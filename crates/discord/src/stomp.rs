//! STOMP — the `O(N²)` matrix profile with incremental dot products
//! (Zhu et al., "Matrix Profile II", the paper's reference \[23\] and the
//! Discord baseline implementation used throughout its evaluation).
//!
//! This implementation traverses the distance matrix by **diagonals**
//! rather than rows. Along diagonal `k` (all pairs `(i, i + k)`), the dot
//! product updates in O(1):
//!
//! ```text
//! QT(i, i+k) = QT(i−1, i−1+k) − t[i−1]·t[i−1+k] + t[i+m−1]·t[i+k+m−1]
//! ```
//!
//! so each diagonal is an independent O(1)-update chain seeded from the
//! first QT row — which is computed with one FFT pass
//! ([`sliding_dot_products`], `O(N log N)`) instead of the `O(N·m)`
//! direct loop. Independence makes diagonals embarrassingly parallel:
//! they are chunked and fanned out with rayon, each chunk folding into a
//! thread-local profile, and chunk results merge under the total order
//! *(distance, neighbor index)*. Because that merge is commutative and
//! associative, the output is **bit-identical for every thread count**
//! (pinned by a property test).
//!
//! Compared to the row-sweep formulation the diagonal kernel also
//! evaluates each unordered pair once — updating both ends — instead of
//! twice, and walks memory sequentially along both window-stat arrays.

use crate::dist::WindowStats;
use crate::fft::sliding_dot_products;
use crate::profile::{improves, MatrixProfile};
use rayon::prelude::*;

/// Default exclusion half-width: `m/2`, the usual matrix profile
/// convention (trivial matches share more than half their points).
pub fn default_exclusion(m: usize) -> usize {
    (m / 2).max(1)
}

/// One chunk of diagonals folded into a local profile.
fn process_diagonals(
    series: &[f64],
    ws: &WindowStats,
    qt_first: &[f64],
    diagonals: std::ops::Range<usize>,
    profile: &mut [f64],
    index: &mut [usize],
) {
    let count = ws.count();
    let m = ws.m;
    for k in diagonals {
        let mut qt = qt_first[k];
        for i in 0..count - k {
            let j = i + k;
            if i > 0 {
                qt += series[i + m - 1] * series[j + m - 1] - series[i - 1] * series[j - 1];
            }
            let d = ws.dist(i, j, qt);
            if improves(d, j, profile[i], index[i]) {
                profile[i] = d;
                index[i] = j;
            }
            if improves(d, i, profile[j], index[j]) {
                profile[j] = d;
                index[j] = i;
            }
        }
    }
}

/// Computes the matrix profile of `series` for window length `m` using
/// diagonal-parallel STOMP with exclusion half-width `exclusion`.
///
/// The worker count follows rayon's current configuration
/// (`ThreadPoolBuilder::install` / `RAYON_NUM_THREADS`); results are
/// identical for every worker count.
///
/// # Panics
///
/// Panics if `m == 0` or `m > series.len()`.
pub fn stomp_with_exclusion(series: &[f64], m: usize, exclusion: usize) -> MatrixProfile {
    let ws = WindowStats::new(series, m);
    let count = ws.count();
    let mut profile = vec![f64::INFINITY; count];
    let mut index = vec![usize::MAX; count];

    // Diagonals 0..=exclusion hold only self-matches; the first
    // admissible one is exclusion + 1.
    let first_diag = exclusion + 1;
    if first_diag < count {
        // Seed row: QT(0, j) for every j, by FFT instead of O(N·m)
        // direct dot products.
        let qt_first = sliding_dot_products(&series[0..m], series);

        let threads = rayon::current_num_threads();
        if threads <= 1 {
            process_diagonals(
                series,
                &ws,
                &qt_first,
                first_diag..count,
                &mut profile,
                &mut index,
            );
        } else {
            // One chunk per worker, cut so each holds ~equal *work*
            // (diagonal k has count − k cells, so equal-length chunks
            // would be badly imbalanced). Bounds the transient partial
            // profiles at O(threads · count) and keeps workers busy.
            let total_work: usize = (first_diag..count).map(|k| count - k).sum();
            let per_chunk = total_work.div_ceil(threads).max(1);
            let mut chunks: Vec<std::ops::Range<usize>> = Vec::with_capacity(threads);
            let mut start = first_diag;
            let mut acc = 0usize;
            for k in first_diag..count {
                acc += count - k;
                if acc >= per_chunk || k + 1 == count {
                    chunks.push(start..k + 1);
                    start = k + 1;
                    acc = 0;
                }
            }
            let partials: Vec<(Vec<f64>, Vec<usize>)> = chunks
                .into_par_iter()
                .map(|range| {
                    let mut local_profile = vec![f64::INFINITY; count];
                    let mut local_index = vec![usize::MAX; count];
                    process_diagonals(
                        series,
                        &ws,
                        &qt_first,
                        range,
                        &mut local_profile,
                        &mut local_index,
                    );
                    (local_profile, local_index)
                })
                .collect();
            // (distance, index)-lexicographic merge: commutative and
            // associative, hence thread-count independent.
            for (local_profile, local_index) in partials {
                for i in 0..count {
                    if improves(local_profile[i], local_index[i], profile[i], index[i]) {
                        profile[i] = local_profile[i];
                        index[i] = local_index[i];
                    }
                }
            }
        }
    }

    MatrixProfile {
        m,
        exclusion,
        profile,
        index,
    }
}

/// STOMP with the default `m/2` exclusion zone.
pub fn stomp(series: &[f64], m: usize) -> MatrixProfile {
    stomp_with_exclusion(series, m, default_exclusion(m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force;

    fn test_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                (t * 0.31).sin() * 2.0 + (t * 0.057).cos() + ((i * 7919) % 13) as f64 * 0.05
            })
            .collect()
    }

    #[test]
    fn matches_brute_force_exactly_enough() {
        let series = test_series(150);
        for &m in &[5usize, 8, 16] {
            let exc = m - 1;
            let fast = stomp_with_exclusion(&series, m, exc);
            let slow = brute_force(&series, m, exc);
            assert_eq!(fast.len(), slow.len());
            for i in 0..fast.len() {
                assert!(
                    (fast.profile[i] - slow.profile[i]).abs() < 1e-6,
                    "m={m} i={i}: {} vs {}",
                    fast.profile[i],
                    slow.profile[i]
                );
            }
        }
    }

    #[test]
    fn discord_found_on_planted_anomaly() {
        let mut series: Vec<f64> = (0..300)
            .map(|i| (i as f64 * std::f64::consts::TAU / 30.0).sin())
            .collect();
        // Corrupt one period.
        for v in series[150..180].iter_mut() {
            *v = 0.2;
        }
        let mp = stomp(&series, 30);
        let top = mp.discords(1)[0];
        assert!((120..=180).contains(&top.start), "discord at {}", top.start);
    }

    #[test]
    fn default_exclusion_sane() {
        assert_eq!(default_exclusion(10), 5);
        assert_eq!(default_exclusion(1), 1);
    }

    #[test]
    fn profile_of_pure_period_is_near_zero() {
        let series: Vec<f64> = (0..240)
            .map(|i| (i as f64 * std::f64::consts::TAU / 24.0).sin())
            .collect();
        let mp = stomp(&series, 24);
        // Every window repeats exactly one period away.
        let max = mp.profile.iter().cloned().fold(0.0, f64::max);
        assert!(max < 1e-4, "max profile {max}");
    }

    #[test]
    fn single_window_series() {
        let series = vec![1.0, 2.0, 3.0];
        let mp = stomp(&series, 3);
        assert_eq!(mp.len(), 1);
        assert!(mp.profile[0].is_infinite());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let series = test_series(400);
        let m = 12;
        let reference = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| stomp_with_exclusion(&series, m, m / 2));
        for threads in [2usize, 3, 8] {
            let run = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| stomp_with_exclusion(&series, m, m / 2));
            assert_eq!(reference.profile, run.profile, "{threads} threads: profile");
            assert_eq!(reference.index, run.index, "{threads} threads: index");
        }
    }

    #[test]
    fn exclusion_wider_than_series_yields_all_infinite() {
        let series = test_series(40);
        let mp = stomp_with_exclusion(&series, 5, 100);
        assert!(mp.profile.iter().all(|d| d.is_infinite()));
        assert!(mp.index.iter().all(|&i| i == usize::MAX));
    }
}
