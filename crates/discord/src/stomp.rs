//! STOMP — the `O(N²)` matrix profile with incremental dot products
//! (Zhu et al., "Matrix Profile II", the paper's reference \[23\] and the
//! Discord baseline implementation used throughout its evaluation).
//!
//! Row `i`'s dot products derive from row `i−1`'s in O(1) each:
//! `QT[i][j] = QT[i−1][j−1] − t[i−1]·t[j−1] + t[i+m−1]·t[j+m−1]`.
//! Memory stays O(N): one QT row, updated in place right-to-left, plus the
//! cached first row for the `j = 0` column.

use crate::dist::WindowStats;
use crate::profile::MatrixProfile;

/// Default exclusion half-width: `m/2`, the usual matrix profile
/// convention (trivial matches share more than half their points).
pub fn default_exclusion(m: usize) -> usize {
    (m / 2).max(1)
}

/// Computes the matrix profile of `series` for window length `m` using
/// STOMP with exclusion half-width `exclusion`.
///
/// # Panics
///
/// Panics if `m == 0` or `m > series.len()`.
pub fn stomp_with_exclusion(series: &[f64], m: usize, exclusion: usize) -> MatrixProfile {
    let ws = WindowStats::new(series, m);
    let count = ws.count();
    let mut profile = vec![f64::INFINITY; count];
    let mut index = vec![usize::MAX; count];

    // First row of QT by direct dot products: O(N·m).
    let mut qt: Vec<f64> = (0..count)
        .map(|j| {
            series[0..m]
                .iter()
                .zip(&series[j..j + m])
                .map(|(x, y)| x * y)
                .sum()
        })
        .collect();
    // QT[i][0] equals QT[0][i] by symmetry; keep the first row around.
    let qt_first = qt.clone();

    let mut update_row = |i: usize, qt: &mut [f64]| {
        for j in (0..count).rev() {
            if i.abs_diff(j) <= exclusion {
                continue;
            }
            let d = ws.dist(i, j, qt[j]);
            if d < profile[i] {
                profile[i] = d;
                index[i] = j;
            }
        }
    };

    update_row(0, &mut qt);
    for i in 1..count {
        // In-place right-to-left update keeps QT[i−1][j−1] available.
        for j in (1..count).rev() {
            qt[j] = qt[j - 1] - series[i - 1] * series[j - 1] + series[i + m - 1] * series[j + m - 1];
        }
        qt[0] = qt_first[i];
        update_row(i, &mut qt);
    }

    MatrixProfile {
        m,
        exclusion,
        profile,
        index,
    }
}

/// STOMP with the default `m/2` exclusion zone.
pub fn stomp(series: &[f64], m: usize) -> MatrixProfile {
    stomp_with_exclusion(series, m, default_exclusion(m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force;

    fn test_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                (t * 0.31).sin() * 2.0 + (t * 0.057).cos() + ((i * 7919) % 13) as f64 * 0.05
            })
            .collect()
    }

    #[test]
    fn matches_brute_force_exactly_enough() {
        let series = test_series(150);
        for &m in &[5usize, 8, 16] {
            let exc = m - 1;
            let fast = stomp_with_exclusion(&series, m, exc);
            let slow = brute_force(&series, m, exc);
            assert_eq!(fast.len(), slow.len());
            for i in 0..fast.len() {
                assert!(
                    (fast.profile[i] - slow.profile[i]).abs() < 1e-6,
                    "m={m} i={i}: {} vs {}",
                    fast.profile[i],
                    slow.profile[i]
                );
            }
        }
    }

    #[test]
    fn discord_found_on_planted_anomaly() {
        let mut series: Vec<f64> = (0..300)
            .map(|i| (i as f64 * std::f64::consts::TAU / 30.0).sin())
            .collect();
        // Corrupt one period.
        for v in series[150..180].iter_mut() {
            *v = 0.2;
        }
        let mp = stomp(&series, 30);
        let top = mp.discords(1)[0];
        assert!(
            (120..=180).contains(&top.start),
            "discord at {}",
            top.start
        );
    }

    #[test]
    fn default_exclusion_sane() {
        assert_eq!(default_exclusion(10), 5);
        assert_eq!(default_exclusion(1), 1);
    }

    #[test]
    fn profile_of_pure_period_is_near_zero() {
        let series: Vec<f64> = (0..240)
            .map(|i| (i as f64 * std::f64::consts::TAU / 24.0).sin())
            .collect();
        let mp = stomp(&series, 24);
        // Every window repeats exactly one period away.
        let max = mp.profile.iter().cloned().fold(0.0, f64::max);
        assert!(max < 1e-4, "max profile {max}");
    }

    #[test]
    fn single_window_series() {
        let series = vec![1.0, 2.0, 3.0];
        let mp = stomp(&series, 3);
        assert_eq!(mp.len(), 1);
        assert!(mp.profile[0].is_infinite());
    }
}
