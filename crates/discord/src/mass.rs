//! MASS — Mueen's Algorithm for Similarity Search.
//!
//! Computes the full distance profile of one query window against every
//! window of a series in `O(N log N)`: sliding dot products via FFT, then
//! the z-normalized distance identity per window.

use crate::dist::WindowStats;
use crate::fft::sliding_dot_products;

/// Distance profile of `series[q..q+m]` against all windows of `series`.
///
/// `stats` must have been built for the same series and window length.
/// No exclusion is applied; callers mask self-matches.
pub fn mass_self(series: &[f64], q: usize, stats: &WindowStats) -> Vec<f64> {
    let m = stats.m;
    let query = &series[q..q + m];
    let qts = sliding_dot_products(query, series);
    qts.iter()
        .enumerate()
        .map(|(j, &qt)| stats.dist(q, j, qt))
        .collect()
}

/// Distance profile of an external `query` against all windows of
/// `series` (used by tests and the HOTSAX oracle checks).
pub fn mass(query: &[f64], series: &[f64]) -> Vec<f64> {
    let m = query.len();
    assert!(m > 0 && m <= series.len(), "bad query length");
    // Build a combined buffer so WindowStats covers the query too: treat
    // the query as a window of its own statistics.
    let stats = WindowStats::new(series, m);
    let q_mu = egi_tskit::stats::mean(query);
    let q_var = {
        let ss: f64 = query.iter().map(|&v| (v - q_mu) * (v - q_mu)).sum();
        ss / m as f64
    };
    let q_sigma = if egi_tskit::stats::is_flat(q_mu, q_var) {
        0.0
    } else {
        q_var.sqrt()
    };
    let qts = sliding_dot_products(query, series);
    qts.iter()
        .enumerate()
        .map(|(j, &qt)| {
            let (si, sj) = (q_sigma, stats.sigma[j]);
            if si == 0.0 && sj == 0.0 {
                0.0
            } else if si == 0.0 || sj == 0.0 {
                (2.0 * m as f64).sqrt()
            } else {
                let mf = m as f64;
                let corr = (qt - mf * q_mu * stats.mu[j]) / (mf * si * sj);
                (2.0 * mf * (1.0 - corr.clamp(-1.0, 1.0))).sqrt()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::znorm_euclidean;

    #[test]
    fn self_profile_has_zero_at_query() {
        let series: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() + 0.1 * (i as f64 * 1.7).cos()).collect();
        let m = 10;
        let stats = WindowStats::new(&series, m);
        let dp = mass_self(&series, 25, &stats);
        assert_eq!(dp.len(), 91);
        assert!(dp[25].abs() < 1e-6, "self distance {}", dp[25]);
    }

    #[test]
    fn profile_matches_direct_distances() {
        let series: Vec<f64> = (0..80)
            .map(|i| ((i as f64) * 0.9).sin() * 2.0 + (i as f64 * 0.05))
            .collect();
        let m = 12;
        let stats = WindowStats::new(&series, m);
        let q = 30;
        let dp = mass_self(&series, q, &stats);
        let rescale = (m as f64 / (m as f64 - 1.0)).sqrt();
        for j in (0..dp.len()).step_by(7) {
            let direct = znorm_euclidean(&series[q..q + m], &series[j..j + m]) * rescale;
            assert!(
                (dp[j] - direct).abs() < 1e-6,
                "j={j}: {} vs {}",
                dp[j],
                direct
            );
        }
    }

    #[test]
    fn external_query_profile_matches_self_profile() {
        let series: Vec<f64> = (0..60).map(|i| (i as f64 * 0.5).cos()).collect();
        let m = 8;
        let stats = WindowStats::new(&series, m);
        let q = 13;
        let a = mass_self(&series, q, &stats);
        let b = mass(series[q..q + m].to_vec().as_slice(), &series);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn flat_query_against_flat_series() {
        let series = vec![3.0; 30];
        let dp = mass(&[3.0; 5], &series);
        assert!(dp.iter().all(|&d| d == 0.0));
    }
}
