//! MASS — Mueen's Algorithm for Similarity Search.
//!
//! Computes the full distance profile of one query window against every
//! window of a series in `O(N log N)`: sliding dot products via FFT, then
//! the z-normalized distance identity per window.
//!
//! Two paths are provided:
//!
//! * [`mass_self`] / [`mass`] — the straightforward per-call path: every
//!   invocation transforms the full series again. Kept as the executable
//!   specification (and the bench baseline).
//! * [`MassPrecomputed`] — the shared-spectrum path: the series is padded
//!   and transformed **once** at construction; each query then costs one
//!   forward and one inverse *half-size real* transform against the
//!   cached spectrum, instead of the three full transforms the naive
//!   path pays. STAMP and STOMP's seed row run through this.

use std::sync::Arc;

use egi_tskit::stats::PrefixStats;

use crate::dist::WindowStats;
use crate::fft::{
    c_conj, c_mul, cached_real_plan, next_pow2, sliding_dot_products, Complex, RealFftPlan,
};

/// Distance profile of `series[q..q+m]` against all windows of `series`.
///
/// `stats` must have been built for the same series and window length.
/// No exclusion is applied; callers mask self-matches.
pub fn mass_self(series: &[f64], q: usize, stats: &WindowStats) -> Vec<f64> {
    let m = stats.m;
    let query = &series[q..q + m];
    let qts = sliding_dot_products(query, series);
    qts.iter()
        .enumerate()
        .map(|(j, &qt)| stats.dist(q, j, qt))
        .collect()
}

/// Distance profile of an external `query` against all windows of
/// `series` (used by tests and the HOTSAX oracle checks).
pub fn mass(query: &[f64], series: &[f64]) -> Vec<f64> {
    let m = query.len();
    assert!(m > 0 && m <= series.len(), "bad query length");
    // Build a combined buffer so WindowStats covers the query too: treat
    // the query as a window of its own statistics.
    let stats = WindowStats::new(series, m);
    let q_mu = egi_tskit::stats::mean(query);
    let q_var = {
        let ss: f64 = query.iter().map(|&v| (v - q_mu) * (v - q_mu)).sum();
        ss / m as f64
    };
    let q_sigma = if egi_tskit::stats::is_flat(q_mu, q_var) {
        0.0
    } else {
        q_var.sqrt()
    };
    let qts = sliding_dot_products(query, series);
    qts.iter()
        .enumerate()
        .map(|(j, &qt)| {
            let (si, sj) = (q_sigma, stats.sigma[j]);
            if si == 0.0 && sj == 0.0 {
                0.0
            } else if si == 0.0 || sj == 0.0 {
                (2.0 * m as f64).sqrt()
            } else {
                let mf = m as f64;
                let corr = (qt - mf * q_mu * stats.mu[j]) / (mf * si * sj);
                (2.0 * mf * (1.0 - corr.clamp(-1.0, 1.0))).sqrt()
            }
        })
        .collect()
}

/// Reusable per-query buffers for [`MassPrecomputed`], so a query loop
/// (STAMP) allocates nothing after warm-up.
#[derive(Debug, Default, Clone)]
pub struct MassScratch {
    padded: Vec<f64>,
    spec: Vec<Complex>,
    fft: Vec<Complex>,
    corr: Vec<f64>,
}

/// Shared-spectrum MASS: one series transform amortized over all
/// queries.
///
/// Construction pads the series to the next power of two, runs a single
/// packed-real forward FFT (on the process-wide plan from
/// [`cached_real_plan`], shared with every other caller at that size),
/// and caches the spectrum plus the per-window statistics. [`MassPrecomputed::distance_profile_into`] then answers
/// each self-join query with one half-size forward transform of the
/// padded query, a pointwise conjugate multiply against the cached
/// spectrum, and one half-size inverse transform — the cross-correlation
/// theorem — followed by the `O(1)`-per-window distance identity.
///
/// # Appending points
///
/// [`MassPrecomputed::append`] grows the series in place and refreshes
/// the cached spectrum, leaving the value **bit-identical** to a fresh
/// [`MassPrecomputed::new`] over the concatenated series (see the method
/// docs for the amortization story). This is the substrate of
/// [`crate::streaming::StreamingDiscordMonitor`].
///
/// # Examples
///
/// ```
/// use egi_discord::mass::MassPrecomputed;
///
/// let series: Vec<f64> = (0..64).map(|i| (i as f64 * 0.4).sin()).collect();
/// let mass = MassPrecomputed::new(&series, 8);
/// let profile = mass.distance_profile(10);
/// assert_eq!(profile.len(), mass.window_count());
/// assert!(profile[10].abs() < 1e-6); // self-distance is ~0
/// ```
#[derive(Debug, Clone)]
pub struct MassPrecomputed {
    series: Vec<f64>,
    m: usize,
    size: usize,
    plan: Arc<RealFftPlan>,
    series_spec: Vec<Complex>,
    stats: WindowStats,
    /// Append-path state, built lazily on the first
    /// [`MassPrecomputed::append`] so batch-only users (STAMP, STOMP's
    /// seed row, the detectors) pay no extra memory:
    /// `(prefix_sums, padded_series, fft_scratch)` — the prefix sums
    /// continue the window statistics, the padded buffer lets an append
    /// write only its tail before re-transforming.
    append_state: Option<(PrefixStats, Vec<f64>, Vec<Complex>)>,
}

impl MassPrecomputed {
    /// Builds the cached spectrum and window statistics for self-join
    /// queries of length `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `m > series.len()`.
    pub fn new(series: &[f64], m: usize) -> Self {
        let stats = WindowStats::new(series, m);
        let size = next_pow2(series.len()).max(2);
        let plan = cached_real_plan(size);
        let mut padded = vec![0.0; size];
        padded[..series.len()].copy_from_slice(series);
        let mut series_spec = Vec::new();
        let mut fft_scratch = Vec::new();
        plan.forward_into(&padded, &mut series_spec, &mut fft_scratch);
        Self {
            series: series.to_vec(),
            m,
            size,
            plan,
            series_spec,
            stats,
            append_state: None,
        }
    }

    /// Appends points to the series and refreshes the cached spectrum
    /// and window statistics in place.
    ///
    /// The result is **bit-identical** to `MassPrecomputed::new` over the
    /// concatenated series (pinned by unit and property tests): the
    /// prefix-sum statistics continue their running totals, the padded
    /// buffer gains exactly the appended tail, and the forward transform
    /// reruns on the same process-wide cached plan. Cost per append:
    ///
    /// * **no power-of-two growth** — only the appended tail is copied
    ///   (`O(points)`) before the `O(S log S)` re-transform at the
    ///   current padded size `S`;
    /// * **power-of-two growth** — the padded buffer is re-laid-out at
    ///   the doubled size and the plan swaps to the (globally cached)
    ///   next-size plan; since the size doubles, this slow path runs
    ///   `O(log N)` times over any append schedule, so its copy cost
    ///   amortizes to `O(1)` per appended point.
    ///
    /// The spectrum re-transform dominates, so callers should batch
    /// appends into chunks; each appended chunk of `c` points costs
    /// `O(S log S)` total, i.e. `O((S log S)/c)` per point.
    ///
    /// The append-path buffers (prefix sums, retained padded series,
    /// FFT scratch) are built lazily on the first call — an instance
    /// that never appends carries none of them.
    ///
    /// Existing window statistics and already-computed distance profiles
    /// over old windows keep their meaning — appending adds
    /// `points.len()` new windows and never mutates old series values.
    pub fn append(&mut self, points: &[f64]) {
        if points.is_empty() {
            return;
        }
        egi_obs::counter!("egi_mass_exact_retransforms_total").inc();
        let old_len = self.series.len();
        self.series.extend_from_slice(points);
        let (prefix, padded, fft_scratch) = match &mut self.append_state {
            Some((prefix, padded, fft_scratch)) => {
                prefix.extend(points);
                (prefix, padded, fft_scratch)
            }
            None => {
                // First append: materialize the incremental state from
                // the (already extended) series. PrefixStats::new runs
                // the same left-to-right accumulation an incremental
                // build would, so everything downstream stays bitwise
                // on the batch path.
                let (prefix, padded, fft_scratch) = self.append_state.insert((
                    PrefixStats::new(&self.series),
                    Vec::new(),
                    Vec::new(),
                ));
                (prefix, padded, fft_scratch)
            }
        };
        self.stats.extend_from_prefix(prefix);
        let size = next_pow2(self.series.len()).max(2);
        if size != self.size || padded.is_empty() {
            // First append or power-of-two growth: re-plan (a cache hit
            // after the first time any caller reaches this size) and
            // lay the padded buffer out at the current size.
            self.size = size;
            self.plan = cached_real_plan(size);
            padded.clear();
            padded.resize(size, 0.0);
            padded[..self.series.len()].copy_from_slice(&self.series);
        } else {
            // Same padded size: only the appended tail needs writing.
            padded[old_len..self.series.len()].copy_from_slice(points);
        }
        self.plan
            .forward_into(padded, &mut self.series_spec, fft_scratch);
    }

    /// Retires the oldest `count` points and refreshes every cached
    /// structure in place, leaving the value **bit-identical** to a
    /// fresh [`MassPrecomputed::new`] over the surviving suffix (pinned
    /// by unit and property tests) — the substrate of the streaming
    /// monitor's sliding-window eviction.
    ///
    /// # Cost model (why eviction is a clean re-transform)
    ///
    /// An FFT's rounding depends on its transform length *and* on the
    /// buffer contents from index 0, so no part of the cached spectrum
    /// survives a front truncation — unlike
    /// [`append`](MassPrecomputed::append), which at a fixed padded
    /// size only rewrites the tail. Likewise the prefix-sum window
    /// statistics accumulate from the series origin, so they are
    /// re-accumulated from the suffix
    /// ([`PrefixStats::rebase`](egi_tskit::stats::PrefixStats::rebase) +
    /// [`WindowStats::rebase_from_prefix`](crate::dist::WindowStats::rebase_from_prefix)).
    /// Per eviction of `c` points from a series of `N` the cost is
    /// therefore `O(N − c)` re-accumulation plus one `O(S log S)`
    /// forward transform at the (possibly shrunken) padded size `S` —
    /// i.e. `O((S log S)/c)` per retired point, the exact mirror of the
    /// append amortization: **callers should batch evictions into
    /// chunks**, just as they batch appends. Buffer allocations are
    /// reused, so a steady append-evict loop with retention `n` keeps
    /// every buffer at `O(n + chunk)` capacity (see
    /// [`padded_capacity`](MassPrecomputed::padded_capacity)).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `m` points would survive — callers (the
    /// streaming monitor) enforce the non-panicking
    /// [`EvictError`](egi_tskit::EvictError) contract *before* touching
    /// this layer.
    pub fn evict_front(&mut self, count: usize) {
        if count == 0 {
            return;
        }
        egi_obs::counter!("egi_mass_exact_retransforms_total").inc();
        assert!(
            count <= self.series.len() && self.series.len() - count >= self.m,
            "eviction of {count} points would leave fewer than m = {} of {}",
            self.m,
            self.series.len()
        );
        self.series.drain(..count);
        // Rebase the incremental statistics (materialized on first use,
        // exactly as in `append`, so later appends stay on the bitwise
        // batch path).
        let (prefix, padded, fft_scratch) = match &mut self.append_state {
            Some((prefix, padded, fft_scratch)) => {
                prefix.rebase(&self.series);
                (prefix, padded, fft_scratch)
            }
            None => {
                let (prefix, padded, fft_scratch) = self.append_state.insert((
                    PrefixStats::new(&self.series),
                    Vec::new(),
                    Vec::new(),
                ));
                (prefix, padded, fft_scratch)
            }
        };
        self.stats.rebase_from_prefix(prefix);
        let size = next_pow2(self.series.len()).max(2);
        self.size = size;
        self.plan = cached_real_plan(size);
        padded.clear();
        padded.resize(size, 0.0);
        padded[..self.series.len()].copy_from_slice(&self.series);
        self.plan
            .forward_into(padded, &mut self.series_spec, fft_scratch);
    }

    /// Releases slack capacity the append/evict path accumulated:
    /// shrinks the series buffer, the cached spectrum, the retained
    /// padded buffer, the FFT scratch, and the prefix/window statistics
    /// down to their live lengths. Purely an allocation-level operation
    /// — every cached *value* is untouched, so results stay
    /// bit-identical. Useful after a heavy one-off eviction (a steady
    /// append/evict cycle should *not* compact; it would just
    /// reallocate).
    pub fn compact(&mut self) {
        self.series.shrink_to_fit();
        self.series_spec.shrink_to_fit();
        self.stats.mu.shrink_to_fit();
        self.stats.sigma.shrink_to_fit();
        if let Some((prefix, padded, fft_scratch)) = &mut self.append_state {
            prefix.shrink_to_fit();
            padded.shrink_to_fit();
            fft_scratch.shrink_to_fit();
        }
    }

    /// Window length `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of sliding windows (profile length).
    pub fn window_count(&self) -> usize {
        self.stats.count()
    }

    /// Current padded transform size `S` (a power of two ≥ the series
    /// length). Shrinks on eviction and grows on append; the per-query
    /// and per-append/evict costs scale with it.
    pub fn padded_size(&self) -> usize {
        self.size
    }

    /// Capacity (in `f64`s) retained by the series buffer — cheap
    /// accessor for memory-bound assertions on eviction workloads.
    pub fn series_capacity(&self) -> usize {
        self.series.capacity()
    }

    /// Capacity (in `f64`s) retained by the append/evict-path padded
    /// buffer (0 until the first append or eviction materializes it) —
    /// cheap accessor for memory-bound assertions.
    pub fn padded_capacity(&self) -> usize {
        self.append_state
            .as_ref()
            .map_or(0, |(_, padded, _)| padded.capacity())
    }

    /// The cached per-window statistics.
    pub fn stats(&self) -> &WindowStats {
        &self.stats
    }

    /// The underlying series.
    pub fn series(&self) -> &[f64] {
        &self.series
    }

    /// Sliding dot products of window `q` against every window, written
    /// into `out` (cleared and filled to [`window_count`] values).
    ///
    /// [`window_count`]: MassPrecomputed::window_count
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a valid window start.
    pub fn sliding_dots_into(&self, q: usize, scratch: &mut MassScratch, out: &mut Vec<f64>) {
        let count = self.window_count();
        assert!(q < count, "query start {q} out of range ({count} windows)");
        let query = &self.series[q..q + self.m];
        scratch.padded.clear();
        scratch.padded.resize(self.size, 0.0);
        scratch.padded[..self.m].copy_from_slice(query);
        self.plan
            .forward_into(&scratch.padded, &mut scratch.spec, &mut scratch.fft);
        // Cross-correlation: IDFT(conj(Q) · S); lags 0 ..= n − m are
        // untouched by the circular wrap. Same c_mul/c_conj as
        // `sliding_dot_products`, so the two paths stay bit-identical.
        for (qs, ss) in scratch.spec.iter_mut().zip(&self.series_spec) {
            *qs = c_mul(c_conj(*qs), *ss);
        }
        self.plan
            .inverse_into(&scratch.spec, &mut scratch.corr, &mut scratch.fft);
        out.clear();
        out.extend_from_slice(&scratch.corr[..count]);
    }

    /// Distance profile of window `q` against every window, written into
    /// `out`. Matches [`mass_self`] to ~1e-9 (the property tests pin the
    /// two paths together). No exclusion is applied.
    pub fn distance_profile_into(&self, q: usize, scratch: &mut MassScratch, out: &mut Vec<f64>) {
        egi_obs::counter!("egi_mass_exact_queries_total").inc();
        self.sliding_dots_into(q, scratch, out);
        for (j, qt) in out.iter_mut().enumerate() {
            *qt = self.stats.dist(q, j, *qt);
        }
    }

    /// Allocating convenience wrapper over
    /// [`MassPrecomputed::distance_profile_into`].
    pub fn distance_profile(&self, q: usize) -> Vec<f64> {
        let mut scratch = MassScratch::default();
        let mut out = Vec::new();
        self.distance_profile_into(q, &mut scratch, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::znorm_euclidean;

    #[test]
    fn self_profile_has_zero_at_query() {
        let series: Vec<f64> = (0..100)
            .map(|i| (i as f64 * 0.37).sin() + 0.1 * (i as f64 * 1.7).cos())
            .collect();
        let m = 10;
        let stats = WindowStats::new(&series, m);
        let dp = mass_self(&series, 25, &stats);
        assert_eq!(dp.len(), 91);
        assert!(dp[25].abs() < 1e-6, "self distance {}", dp[25]);
    }

    #[test]
    fn profile_matches_direct_distances() {
        let series: Vec<f64> = (0..80)
            .map(|i| ((i as f64) * 0.9).sin() * 2.0 + (i as f64 * 0.05))
            .collect();
        let m = 12;
        let stats = WindowStats::new(&series, m);
        let q = 30;
        let dp = mass_self(&series, q, &stats);
        let rescale = (m as f64 / (m as f64 - 1.0)).sqrt();
        for j in (0..dp.len()).step_by(7) {
            let direct = znorm_euclidean(&series[q..q + m], &series[j..j + m]) * rescale;
            assert!(
                (dp[j] - direct).abs() < 1e-6,
                "j={j}: {} vs {}",
                dp[j],
                direct
            );
        }
    }

    #[test]
    fn external_query_profile_matches_self_profile() {
        let series: Vec<f64> = (0..60).map(|i| (i as f64 * 0.5).cos()).collect();
        let m = 8;
        let stats = WindowStats::new(&series, m);
        let q = 13;
        let a = mass_self(&series, q, &stats);
        let b = mass(series[q..q + m].to_vec().as_slice(), &series);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn flat_query_against_flat_series() {
        let series = vec![3.0; 30];
        let dp = mass(&[3.0; 5], &series);
        assert!(dp.iter().all(|&d| d == 0.0));
    }

    #[test]
    fn precomputed_matches_mass_self() {
        let series: Vec<f64> = (0..200)
            .map(|i| (i as f64 * 0.23).sin() * 1.5 + ((i * 17) % 5) as f64 * 0.2)
            .collect();
        for &m in &[3usize, 8, 25] {
            let stats = WindowStats::new(&series, m);
            let pre = MassPrecomputed::new(&series, m);
            assert_eq!(pre.window_count(), stats.count());
            for q in [0, 7, 100, stats.count() - 1] {
                let naive = mass_self(&series, q, &stats);
                let fast = pre.distance_profile(q);
                assert_eq!(naive.len(), fast.len());
                for (j, (a, b)) in naive.iter().zip(&fast).enumerate() {
                    assert!((a - b).abs() < 1e-9, "m={m} q={q} j={j}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn precomputed_sliding_dots_match_direct() {
        let series: Vec<f64> = (0..73).map(|i| ((i * i) as f64 * 0.01).sin()).collect();
        let m = 9;
        let pre = MassPrecomputed::new(&series, m);
        let mut scratch = MassScratch::default();
        let mut dots = Vec::new();
        for q in [0usize, 31, 64] {
            pre.sliding_dots_into(q, &mut scratch, &mut dots);
            for j in 0..dots.len() {
                let direct: f64 = series[q..q + m]
                    .iter()
                    .zip(&series[j..j + m])
                    .map(|(x, y)| x * y)
                    .sum();
                assert!((dots[j] - direct).abs() < 1e-8, "q={q} j={j}");
            }
        }
    }

    #[test]
    fn precomputed_handles_tiny_series() {
        let series = [1.0, 2.0, 0.5];
        let pre = MassPrecomputed::new(&series, 3);
        let dp = pre.distance_profile(0);
        assert_eq!(dp.len(), 1);
        assert!(dp[0].abs() < 1e-9);
    }

    #[test]
    fn scratch_reuse_is_clean() {
        // A scratch used for a long query loop must not leak state
        // between queries.
        let series: Vec<f64> = (0..120).map(|i| (i as f64 * 0.61).cos()).collect();
        let pre = MassPrecomputed::new(&series, 11);
        let mut scratch = MassScratch::default();
        let mut out = Vec::new();
        pre.distance_profile_into(5, &mut scratch, &mut out);
        let first = out.clone();
        pre.distance_profile_into(90, &mut scratch, &mut out);
        pre.distance_profile_into(5, &mut scratch, &mut out);
        assert_eq!(first, out);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn query_out_of_range_panics() {
        let series = vec![0.0, 1.0, 2.0, 3.0];
        let pre = MassPrecomputed::new(&series, 2);
        pre.distance_profile(3);
    }

    /// The append path must leave the struct bit-identical to a fresh
    /// construction over the full series: same spectrum, same stats,
    /// same distance profiles — the foundation of the streaming
    /// monitor's finished-profile parity.
    #[test]
    fn append_is_bit_identical_to_fresh_build() {
        let full: Vec<f64> = (0..300)
            .map(|i| (i as f64 * 0.19).sin() * 2.0 + ((i * 13) % 7) as f64 * 0.1)
            .collect();
        let m = 12;
        // Splits exercise both the same-size path and pow2 growth
        // (next_pow2(140)=256 < next_pow2(300)=512).
        for split in [m, 140, 255, 256, 299] {
            let mut inc = MassPrecomputed::new(&full[..split], m);
            for chunk in full[split..].chunks(37) {
                inc.append(chunk);
            }
            let fresh = MassPrecomputed::new(&full, m);
            assert_eq!(inc.series_spec, fresh.series_spec, "split {split}");
            assert_eq!(inc.stats.mu, fresh.stats.mu, "split {split}");
            assert_eq!(inc.stats.sigma, fresh.stats.sigma, "split {split}");
            assert_eq!(inc.size, fresh.size, "split {split}");
            assert_eq!(inc.window_count(), fresh.window_count());
            let mut scratch = MassScratch::default();
            let (mut a, mut b) = (Vec::new(), Vec::new());
            for q in [0, split - m, inc.window_count() - 1] {
                inc.distance_profile_into(q, &mut scratch, &mut a);
                fresh.distance_profile_into(q, &mut scratch, &mut b);
                assert_eq!(a, b, "split {split} q {q}");
            }
        }
    }

    /// The eviction path must leave the struct bit-identical to a fresh
    /// construction over the surviving suffix: same spectrum, same
    /// stats, same distance profiles — the foundation of the streaming
    /// monitor's suffix-parity contract.
    #[test]
    fn evict_front_is_bit_identical_to_fresh_suffix_build() {
        let full: Vec<f64> = (0..300)
            .map(|i| (i as f64 * 0.21).sin() * 1.8 + ((i * 11) % 6) as f64 * 0.15)
            .collect();
        let m = 10;
        // Cuts exercise pow2 shrink (next_pow2(300)=512 → 256/128) and
        // the same-size path, down to the single-window boundary.
        for cut in [1usize, 37, 44, 172, 300 - m] {
            let mut inc = MassPrecomputed::new(&full, m);
            inc.evict_front(cut);
            let fresh = MassPrecomputed::new(&full[cut..], m);
            assert_eq!(inc.series(), fresh.series(), "cut {cut}");
            assert_eq!(inc.series_spec, fresh.series_spec, "cut {cut}");
            assert_eq!(inc.stats.mu, fresh.stats.mu, "cut {cut}");
            assert_eq!(inc.stats.sigma, fresh.stats.sigma, "cut {cut}");
            assert_eq!(inc.size, fresh.size, "cut {cut}");
            assert_eq!(inc.window_count(), fresh.window_count());
            let mut scratch = MassScratch::default();
            let (mut a, mut b) = (Vec::new(), Vec::new());
            for q in [0, inc.window_count() / 2, inc.window_count() - 1] {
                inc.distance_profile_into(q, &mut scratch, &mut a);
                fresh.distance_profile_into(q, &mut scratch, &mut b);
                assert_eq!(a, b, "cut {cut} q {q}");
            }
        }
    }

    /// Interleaved appends and evictions must stay on the bitwise batch
    /// path over whatever suffix survives.
    #[test]
    fn evict_then_append_matches_fresh_build_over_suffix() {
        let full: Vec<f64> = (0..260)
            .map(|i| (i as f64 * 0.33).cos() * 2.2 + (i % 7) as f64 * 0.09)
            .collect();
        let m = 9;
        let mut inc = MassPrecomputed::new(&full[..140], m);
        inc.evict_front(60); // suffix = full[60..140]
        for chunk in full[140..].chunks(31) {
            inc.append(chunk);
        }
        inc.evict_front(25); // suffix = full[85..]
        let fresh = MassPrecomputed::new(&full[85..], m);
        assert_eq!(inc.series(), fresh.series());
        assert_eq!(inc.series_spec, fresh.series_spec);
        assert_eq!(inc.stats.mu, fresh.stats.mu);
        assert_eq!(inc.stats.sigma, fresh.stats.sigma);
        for q in [0usize, 50, inc.window_count() - 1] {
            assert_eq!(inc.distance_profile(q), fresh.distance_profile(q), "q {q}");
        }
    }

    #[test]
    fn evict_zero_is_a_no_op() {
        let series: Vec<f64> = (0..50).map(|i| (i as f64 * 0.4).sin()).collect();
        let mut inc = MassPrecomputed::new(&series, 6);
        let spec_before = inc.series_spec.clone();
        inc.evict_front(0);
        assert_eq!(inc.series_spec, spec_before);
        assert_eq!(inc.window_count(), 45);
        assert_eq!(inc.padded_capacity(), 0, "no append state materialized");
    }

    #[test]
    #[should_panic(expected = "would leave fewer than m")]
    fn evict_below_one_window_panics() {
        let series: Vec<f64> = (0..40).map(|i| i as f64 * 0.1).collect();
        let mut inc = MassPrecomputed::new(&series, 8);
        inc.evict_front(35);
    }

    #[test]
    fn append_empty_is_a_no_op() {
        let series: Vec<f64> = (0..40).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut inc = MassPrecomputed::new(&series, 5);
        let spec_before = inc.series_spec.clone();
        inc.append(&[]);
        assert_eq!(inc.series_spec, spec_before);
        assert_eq!(inc.window_count(), 36);
    }

    #[test]
    fn append_single_points_grow_window_count() {
        let mut inc = MassPrecomputed::new(&[1.0, 2.0, 0.5], 3);
        assert_eq!(inc.window_count(), 1);
        inc.append(&[4.0]);
        inc.append(&[-1.0]);
        assert_eq!(inc.window_count(), 3);
        let fresh = MassPrecomputed::new(&[1.0, 2.0, 0.5, 4.0, -1.0], 3);
        for q in 0..3 {
            assert_eq!(inc.distance_profile(q), fresh.distance_profile(q));
        }
    }
}
