//! Minimal radix-2 FFT.
//!
//! Just enough Fourier machinery for MASS's sliding dot products: an
//! iterative in-place Cooley–Tukey transform over `(re, im)` pairs, its
//! inverse, and a real-sequence convolution helper. Power-of-two sizes
//! only; callers pad.

/// A complex number as a bare `(re, im)` pair.
pub type Complex = (f64, f64);

#[inline]
fn c_add(a: Complex, b: Complex) -> Complex {
    (a.0 + b.0, a.1 + b.1)
}

#[inline]
fn c_sub(a: Complex, b: Complex) -> Complex {
    (a.0 - b.0, a.1 - b.1)
}

#[inline]
fn c_mul(a: Complex, b: Complex) -> Complex {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

/// Next power of two ≥ `n` (and ≥ 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place FFT (`inverse = false`) or unscaled inverse FFT
/// (`inverse = true`; divide by `len` afterwards to invert).
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two.
pub fn fft_in_place(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "FFT size {n} not a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }

    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w: Complex = (1.0, 0.0);
            for k in 0..len / 2 {
                let u = buf[i + k];
                let v = c_mul(buf[i + k + len / 2], w);
                buf[i + k] = c_add(u, v);
                buf[i + k + len / 2] = c_sub(u, v);
                w = c_mul(w, wlen);
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Linear convolution of two real sequences via FFT.
///
/// Returns a vector of length `a.len() + b.len() − 1` (empty if either
/// input is empty).
pub fn convolve_real(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let size = next_pow2(out_len);
    let mut fa: Vec<Complex> = a.iter().map(|&x| (x, 0.0)).collect();
    let mut fb: Vec<Complex> = b.iter().map(|&x| (x, 0.0)).collect();
    fa.resize(size, (0.0, 0.0));
    fb.resize(size, (0.0, 0.0));
    fft_in_place(&mut fa, false);
    fft_in_place(&mut fb, false);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x = c_mul(*x, *y);
    }
    fft_in_place(&mut fa, true);
    let scale = 1.0 / size as f64;
    fa.truncate(out_len);
    fa.into_iter().map(|(re, _)| re * scale).collect()
}

/// Sliding dot products of `query` against every window of `series`:
/// `out[j] = Σ_k query[k] · series[j + k]` for
/// `j = 0 ..= series.len() − query.len()`.
///
/// Computed as a convolution with the reversed query, `O(N log N)`.
///
/// # Panics
///
/// Panics if the query is empty or longer than the series.
pub fn sliding_dot_products(query: &[f64], series: &[f64]) -> Vec<f64> {
    let m = query.len();
    let n = series.len();
    assert!(m > 0, "empty query");
    assert!(m <= n, "query longer than series");
    let reversed: Vec<f64> = query.iter().rev().copied().collect();
    let conv = convolve_real(&reversed, series);
    // Full convolution index m-1+j corresponds to dot at offset j.
    conv[m - 1..n].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; a.len() + b.len() - 1];
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                out[i + j] += x * y;
            }
        }
        out
    }

    #[test]
    fn fft_roundtrip_recovers_input() {
        let mut buf: Vec<Complex> = (0..16).map(|i| (i as f64, -(i as f64) / 3.0)).collect();
        let original = buf.clone();
        fft_in_place(&mut buf, false);
        fft_in_place(&mut buf, true);
        for ((re, im), (ore, oim)) in buf.iter().zip(&original) {
            assert!((re / 16.0 - ore).abs() < 1e-9);
            assert!((im / 16.0 - oim).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![(0.0, 0.0); 8];
        buf[0] = (1.0, 0.0);
        fft_in_place(&mut buf, false);
        for (re, im) in buf {
            assert!((re - 1.0).abs() < 1e-12);
            assert!(im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_parseval_energy() {
        let xs: Vec<f64> = (0..32).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let mut buf: Vec<Complex> = xs.iter().map(|&x| (x, 0.0)).collect();
        fft_in_place(&mut buf, false);
        let time_energy: f64 = xs.iter().map(|x| x * x).sum();
        let freq_energy: f64 = buf.iter().map(|(r, i)| r * r + i * i).sum::<f64>() / 32.0;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_pow2() {
        let mut buf = vec![(0.0, 0.0); 6];
        fft_in_place(&mut buf, false);
    }

    #[test]
    fn convolution_matches_naive() {
        let a = [1.0, 2.0, -1.0, 0.5];
        let b = [3.0, -2.0, 1.0, 4.0, -1.0];
        let fast = convolve_real(&a, &b);
        let slow = naive_convolve(&a, &b);
        assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(&slow) {
            assert!((f - s).abs() < 1e-9, "{f} vs {s}");
        }
    }

    #[test]
    fn convolution_with_empty_is_empty() {
        assert!(convolve_real(&[], &[1.0]).is_empty());
        assert!(convolve_real(&[1.0], &[]).is_empty());
    }

    #[test]
    fn sliding_dots_match_direct() {
        let series: Vec<f64> = (0..50).map(|i| (i as f64 * 0.7).sin()).collect();
        let query = &series[10..18];
        let fast = sliding_dot_products(query, &series);
        assert_eq!(fast.len(), 43);
        for j in 0..fast.len() {
            let direct: f64 = query.iter().zip(&series[j..j + 8]).map(|(q, s)| q * s).sum();
            assert!((fast[j] - direct).abs() < 1e-8, "offset {j}");
        }
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(8), 8);
        assert_eq!(next_pow2(1000), 1024);
    }
}
