//! Radix-2 FFT with cached plans and real-input packing.
//!
//! Three layers, each fully in-house (no external DSP crates):
//!
//! * [`FftPlan`] — a reusable complex transform plan for one
//!   power-of-two size: the bit-reversal permutation table and the
//!   twiddle factors are computed **once** and shared by every
//!   subsequent transform. The legacy [`fft_in_place`] entry point (plan
//!   per call, trigonometric recurrence) is kept as a wrapper.
//! * [`RealFftPlan`] — real-input packing: a real transform of length
//!   `n` runs as a complex transform of length `n/2` (even samples in
//!   the real lane, odd samples in the imaginary lane) plus an `O(n)`
//!   spectral unpack — roughly halving the work of both the forward and
//!   inverse transforms for MASS's all-real signals.
//! * Convolution/correlation helpers: [`convolve_real`] and
//!   [`sliding_dot_products`] (the MASS kernel), both running on cached
//!   real plans.
//! * A **global plan cache** ([`cached_plan`] / [`cached_real_plan`]):
//!   one shared `Arc` plan per transform size, behind a mutexed map.
//!   Plan construction (`O(n)` tables plus trigonometry) used to be paid
//!   on *every* call by the one-shot entry points — the HOTSAX oracle,
//!   STOMP's seed row, eval's scalability sweeps; now each size is built
//!   once per process and handed out by refcount. The mutex guards only
//!   the map lookup (transforms themselves run lock-free on `&self`), so
//!   the cache is shared safely across rayon workers.
//!
//! `MassPrecomputed` in [`crate::mass`] builds on `RealFftPlan` to
//! transform a series **once** and answer every query against the cached
//! spectrum.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A complex number as a bare `(re, im)` pair.
pub type Complex = (f64, f64);

#[inline]
fn c_add(a: Complex, b: Complex) -> Complex {
    (a.0 + b.0, a.1 + b.1)
}

#[inline]
fn c_sub(a: Complex, b: Complex) -> Complex {
    (a.0 - b.0, a.1 - b.1)
}

/// Complex multiplication.
#[inline]
pub fn c_mul(a: Complex, b: Complex) -> Complex {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

/// Complex conjugate.
#[inline]
pub fn c_conj(a: Complex) -> Complex {
    (a.0, -a.1)
}

/// Next power of two ≥ `n` (and ≥ 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// A cached complex FFT plan for one power-of-two size.
///
/// Construction precomputes the bit-reversal permutation and the
/// twiddle-factor table `e^{-2πik/n}` (`k < n/2`); transforms then run
/// with pure table lookups — no trigonometry, no recurrence error
/// accumulation — and may be shared across threads (`&self` methods).
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    bitrev: Vec<u32>,
    /// Stage-ordered twiddles: for each butterfly stage `len = 2, 4, …,
    /// n`, the `len/2` roots `e^{-2πik/len}` — laid out contiguously so
    /// the inner loop walks them sequentially (`n − 1` entries total).
    twiddles: Vec<Complex>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "FFT size {n} not a power of two");
        let mut bitrev = vec![0u32; n];
        for i in 1..n {
            let prev = bitrev[i >> 1] >> 1;
            bitrev[i] = prev | if i & 1 == 1 { (n as u32) >> 1 } else { 0 };
        }
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2;
        while len <= n {
            for k in 0..len / 2 {
                let ang = -std::f64::consts::TAU * k as f64 / len as f64;
                twiddles.push((ang.cos(), ang.sin()));
            }
            len <<= 1;
        }
        Self {
            n,
            bitrev,
            twiddles,
        }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the degenerate zero-length plan (never constructable —
    /// kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Forward DFT in place.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the plan size.
    pub fn forward(&self, buf: &mut [Complex]) {
        self.transform(buf, false);
    }

    /// Unscaled inverse DFT in place (divide by `len` afterwards).
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the plan size.
    pub fn inverse_unscaled(&self, buf: &mut [Complex]) {
        self.transform(buf, true);
    }

    fn transform(&self, buf: &mut [Complex], inverse: bool) {
        let n = self.n;
        assert_eq!(buf.len(), n, "buffer length does not match plan size");
        if n <= 1 {
            return;
        }
        for i in 0..n {
            let j = self.bitrev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
        let sign = if inverse { -1.0 } else { 1.0 };
        let mut stage_off = 0;
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stage = &self.twiddles[stage_off..stage_off + half];
            for block in buf.chunks_exact_mut(len) {
                let (lo, hi) = block.split_at_mut(half);
                for ((u, v), &(wr, wi)) in lo.iter_mut().zip(hi.iter_mut()).zip(stage) {
                    let wi = sign * wi;
                    let t = (v.0 * wr - v.1 * wi, v.0 * wi + v.1 * wr);
                    *v = (u.0 - t.0, u.1 - t.1);
                    *u = (u.0 + t.0, u.1 + t.1);
                }
            }
            stage_off += half;
            len <<= 1;
        }
    }
}

/// A cached FFT plan for **real** inputs of even power-of-two length
/// `n ≥ 2`, using the half-size complex transform plus an `O(n)`
/// pack/unpack stage.
///
/// The spectrum representation is the standard real-FFT half-spectrum:
/// `n/2 + 1` bins `X[0..=n/2]`; the remaining bins are implied by the
/// Hermitian symmetry `X[n−k] = conj(X[k])` and never materialized.
#[derive(Debug, Clone)]
pub struct RealFftPlan {
    n: usize,
    half: FftPlan,
    /// `e^{-2πik/n}` for `k < n/2`.
    twiddles: Vec<Complex>,
}

impl RealFftPlan {
    /// Builds a plan for real transforms of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2 && n.is_power_of_two(), "real FFT size {n} invalid");
        let twiddles: Vec<Complex> = (0..n / 2)
            .map(|k| {
                let ang = -std::f64::consts::TAU * k as f64 / n as f64;
                (ang.cos(), ang.sin())
            })
            .collect();
        Self {
            n,
            half: FftPlan::new(n / 2),
            twiddles,
        }
    }

    /// Real transform length `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never true; kept alongside [`RealFftPlan::len`] for idiom.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of half-spectrum bins (`n/2 + 1`).
    pub fn spectrum_len(&self) -> usize {
        self.n / 2 + 1
    }

    /// Forward real DFT: writes the `n/2 + 1` half-spectrum bins of
    /// `input` into `spec`. `scratch` is resized as needed and may be
    /// reused across calls.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != n`.
    pub fn forward_into(&self, input: &[f64], spec: &mut Vec<Complex>, scratch: &mut Vec<Complex>) {
        let n = self.n;
        let h = n / 2;
        assert_eq!(input.len(), n, "input length does not match plan size");
        scratch.clear();
        scratch.extend((0..h).map(|k| (input[2 * k], input[2 * k + 1])));
        self.half.forward(scratch);

        spec.clear();
        spec.reserve(h + 1);
        for k in 0..=h {
            let zk = scratch[k % h];
            let zr = c_conj(scratch[(h - k) % h]);
            // Spectra of the even/odd sample streams.
            let fe = ((zk.0 + zr.0) * 0.5, (zk.1 + zr.1) * 0.5);
            let fo_times_i = c_sub(zk, zr); // 2i·Fo[k]
            let fo = (fo_times_i.1 * 0.5, -fo_times_i.0 * 0.5);
            let w = if k < h { self.twiddles[k] } else { (-1.0, 0.0) };
            spec.push(c_add(fe, c_mul(w, fo)));
        }
    }

    /// Inverse real DFT: reconstructs the length-`n` real signal from its
    /// `n/2 + 1` half-spectrum bins. Properly scaled (a forward →
    /// inverse round trip is the identity).
    ///
    /// # Panics
    ///
    /// Panics if `spec.len() != n/2 + 1`.
    pub fn inverse_into(&self, spec: &[Complex], out: &mut Vec<f64>, scratch: &mut Vec<Complex>) {
        let n = self.n;
        let h = n / 2;
        assert_eq!(
            spec.len(),
            h + 1,
            "spectrum length does not match plan size"
        );
        scratch.clear();
        scratch.reserve(h);
        for k in 0..h {
            let xk = spec[k];
            let xr = c_conj(spec[h - k]);
            let fe = ((xk.0 + xr.0) * 0.5, (xk.1 + xr.1) * 0.5);
            let w_fo = ((xk.0 - xr.0) * 0.5, (xk.1 - xr.1) * 0.5); // W^k·Fo[k]
            let fo = c_mul(c_conj(self.twiddles[k]), w_fo);
            // Z[k] = Fe[k] + i·Fo[k]
            scratch.push((fe.0 - fo.1, fe.1 + fo.0));
        }
        self.half.inverse_unscaled(scratch);
        let scale = 1.0 / h as f64;
        out.clear();
        out.reserve(n);
        for z in scratch.iter() {
            out.push(z.0 * scale);
            out.push(z.1 * scale);
        }
    }
}

/// Default capacity of each global plan cache (complex and real are
/// bounded independently).
///
/// Deliberately generous: plan sizes are powers of two, so a process
/// that touches series from 2 points to 2⁶³ points still needs at most
/// 63 distinct sizes per cache — in practice the bound only matters for
/// pathological workloads that cycle through many sizes. Eviction is
/// purely a memory bound, never a correctness concern: a re-built plan
/// computes bit-identical tables (deterministic trigonometry), so
/// transforms are unaffected by churn (pinned by
/// `evicted_plans_rebuild_bit_identical`).
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 64;

static PLAN_CACHE_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_PLAN_CACHE_CAPACITY);

/// Sets the per-cache capacity bound (clamped to ≥ 1) for both plan
/// caches; returns the previous value. Long-running services with
/// unusual size diversity can lower it to bound memory; eviction never
/// changes any transform result.
///
/// Lowering the bound takes effect immediately: both caches are shrunk
/// to the new capacity here (eviction otherwise only runs on the
/// insert path, which a hit-only workload never reaches).
pub fn set_plan_cache_capacity(capacity: usize) -> usize {
    let capacity = capacity.max(1);
    let previous = PLAN_CACHE_CAPACITY.swap(capacity, Ordering::Relaxed);
    if let Some(cache) = COMPLEX_PLANS.get() {
        lock_cache(cache).evict_to(capacity);
    }
    if let Some(cache) = REAL_PLANS.get() {
        lock_cache(cache).evict_to(capacity);
    }
    previous
}

/// The current per-cache capacity bound.
pub fn plan_cache_capacity() -> usize {
    PLAN_CACHE_CAPACITY.load(Ordering::Relaxed)
}

/// An LRU-bounded plan map: each entry carries the tick of its last
/// access; inserts beyond capacity evict the least-recently-used entry.
/// Outstanding `Arc`s keep evicted plans alive, so eviction can never
/// invalidate a plan mid-transform.
struct PlanCache<T> {
    entries: HashMap<usize, (Arc<T>, u64)>,
    tick: u64,
}

impl<T> PlanCache<T> {
    fn new() -> Self {
        Self {
            entries: HashMap::new(),
            tick: 0,
        }
    }

    fn get_or_insert_with(
        &mut self,
        n: usize,
        capacity: usize,
        build: impl FnOnce() -> T,
    ) -> Arc<T> {
        self.tick += 1;
        let tick = self.tick;
        if let Some((plan, last_used)) = self.entries.get_mut(&n) {
            *last_used = tick;
            egi_obs::counter!("egi_fft_plan_cache_hits_total").inc();
            return Arc::clone(plan);
        }
        egi_obs::counter!("egi_fft_plan_cache_misses_total").inc();
        let plan = Arc::new(build());
        self.entries.insert(n, (Arc::clone(&plan), tick));
        self.evict_to(capacity);
        plan
    }

    /// Evicts least-recently-used entries until at most `capacity`
    /// remain.
    fn evict_to(&mut self, capacity: usize) {
        while self.entries.len() > capacity {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, (_, last_used))| *last_used)
                .map(|(&size, _)| size)
                .expect("cache over capacity is non-empty");
            self.entries.remove(&lru);
            egi_obs::counter!("egi_fft_plan_cache_evictions_total").inc();
        }
    }
}

static COMPLEX_PLANS: OnceLock<Mutex<PlanCache<FftPlan>>> = OnceLock::new();
static REAL_PLANS: OnceLock<Mutex<PlanCache<RealFftPlan>>> = OnceLock::new();

/// Locks a plan cache, recovering from poisoning: sizes are validated
/// *before* the lock is taken, so a panic can never leave the map
/// mid-mutation (`get_or_insert_with` inserts only after the plan
/// builds successfully).
fn lock_cache<T>(cache: &Mutex<PlanCache<T>>) -> std::sync::MutexGuard<'_, PlanCache<T>> {
    cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The process-wide shared [`FftPlan`] for size `n`, built on first
/// request and reused (by `Arc`) until it falls out of the LRU bound
/// (see [`set_plan_cache_capacity`]).
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn cached_plan(n: usize) -> Arc<FftPlan> {
    assert!(n.is_power_of_two(), "FFT size {n} not a power of two");
    let cache = COMPLEX_PLANS.get_or_init(|| Mutex::new(PlanCache::new()));
    lock_cache(cache).get_or_insert_with(n, plan_cache_capacity(), || FftPlan::new(n))
}

/// The process-wide shared [`RealFftPlan`] for size `n`, built on first
/// request and reused (by `Arc`) until it falls out of the LRU bound
/// (see [`set_plan_cache_capacity`]).
///
/// # Panics
///
/// Panics if `n < 2` or `n` is not a power of two.
pub fn cached_real_plan(n: usize) -> Arc<RealFftPlan> {
    assert!(n >= 2 && n.is_power_of_two(), "real FFT size {n} invalid");
    let cache = REAL_PLANS.get_or_init(|| Mutex::new(PlanCache::new()));
    lock_cache(cache).get_or_insert_with(n, plan_cache_capacity(), || RealFftPlan::new(n))
}

/// In-place FFT (`inverse = false`) or unscaled inverse FFT
/// (`inverse = true`; divide by `len` afterwards to invert).
///
/// Legacy entry point; runs on the global plan cache, so repeated calls
/// at one size no longer rebuild tables.
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two.
pub fn fft_in_place(buf: &mut [Complex], inverse: bool) {
    let plan = cached_plan(buf.len());
    if inverse {
        plan.inverse_unscaled(buf);
    } else {
        plan.forward(buf);
    }
}

/// Linear convolution of two real sequences via the packed real FFT.
///
/// Returns a vector of length `a.len() + b.len() − 1` (empty if either
/// input is empty).
pub fn convolve_real(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let size = next_pow2(out_len).max(2);
    let plan = cached_real_plan(size);
    let mut padded = vec![0.0; size];
    let mut scratch = Vec::new();
    let mut spec_a = Vec::new();
    padded[..a.len()].copy_from_slice(a);
    plan.forward_into(&padded, &mut spec_a, &mut scratch);
    padded[..a.len()].iter_mut().for_each(|v| *v = 0.0);
    padded[..b.len()].copy_from_slice(b);
    let mut spec_b = Vec::new();
    plan.forward_into(&padded, &mut spec_b, &mut scratch);
    for (x, y) in spec_a.iter_mut().zip(&spec_b) {
        *x = c_mul(*x, *y);
    }
    let mut out = Vec::new();
    plan.inverse_into(&spec_a, &mut out, &mut scratch);
    out.truncate(out_len);
    out
}

/// Sliding dot products of `query` against every window of `series`:
/// `out[j] = Σ_k query[k] · series[j + k]` for
/// `j = 0 ..= series.len() − query.len()`.
///
/// Computed as a circular cross-correlation on the packed real FFT,
/// `O(N log N)`. For repeated queries against one series, use
/// [`crate::mass::MassPrecomputed`], which caches the series spectrum.
///
/// # Panics
///
/// Panics if the query is empty or longer than the series.
pub fn sliding_dot_products(query: &[f64], series: &[f64]) -> Vec<f64> {
    let m = query.len();
    let n = series.len();
    assert!(m > 0, "empty query");
    assert!(m <= n, "query longer than series");
    let size = next_pow2(n).max(2);
    let plan = cached_real_plan(size);
    let mut scratch = Vec::new();
    let mut padded = vec![0.0; size];
    padded[..n].copy_from_slice(series);
    let mut series_spec = Vec::new();
    plan.forward_into(&padded, &mut series_spec, &mut scratch);
    padded.iter_mut().for_each(|v| *v = 0.0);
    padded[..m].copy_from_slice(query);
    let mut query_spec = Vec::new();
    plan.forward_into(&padded, &mut query_spec, &mut scratch);
    // Cross-correlation theorem: corr = IDFT(conj(Q) · S). Lags
    // 0 ..= n − m stay clear of the circular wrap-around.
    for (q, s) in query_spec.iter_mut().zip(&series_spec) {
        *q = c_mul(c_conj(*q), *s);
    }
    let mut corr = Vec::new();
    plan.inverse_into(&query_spec, &mut corr, &mut scratch);
    corr.truncate(n - m + 1);
    corr
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; a.len() + b.len() - 1];
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                out[i + j] += x * y;
            }
        }
        out
    }

    #[test]
    fn fft_roundtrip_recovers_input() {
        let mut buf: Vec<Complex> = (0..16).map(|i| (i as f64, -(i as f64) / 3.0)).collect();
        let original = buf.clone();
        fft_in_place(&mut buf, false);
        fft_in_place(&mut buf, true);
        for ((re, im), (ore, oim)) in buf.iter().zip(&original) {
            assert!((re / 16.0 - ore).abs() < 1e-9);
            assert!((im / 16.0 - oim).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![(0.0, 0.0); 8];
        buf[0] = (1.0, 0.0);
        fft_in_place(&mut buf, false);
        for (re, im) in buf {
            assert!((re - 1.0).abs() < 1e-12);
            assert!(im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_parseval_energy() {
        let xs: Vec<f64> = (0..32).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let mut buf: Vec<Complex> = xs.iter().map(|&x| (x, 0.0)).collect();
        fft_in_place(&mut buf, false);
        let time_energy: f64 = xs.iter().map(|x| x * x).sum();
        let freq_energy: f64 = buf.iter().map(|(r, i)| r * r + i * i).sum::<f64>() / 32.0;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_pow2() {
        let mut buf = vec![(0.0, 0.0); 6];
        fft_in_place(&mut buf, false);
    }

    #[test]
    fn plan_matches_legacy_transform() {
        // The table-driven plan must agree with a direct DFT.
        let n = 64;
        let signal: Vec<Complex> = (0..n)
            .map(|i| ((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut fast = signal.clone();
        FftPlan::new(n).forward(&mut fast);
        for (k, &bin) in fast.iter().enumerate() {
            let mut direct = (0.0f64, 0.0f64);
            for (t, &x) in signal.iter().enumerate() {
                let ang = -std::f64::consts::TAU * (k * t % n) as f64 / n as f64;
                direct = c_add(direct, c_mul(x, (ang.cos(), ang.sin())));
            }
            assert!(
                (bin.0 - direct.0).abs() < 1e-8 && (bin.1 - direct.1).abs() < 1e-8,
                "bin {k}: {:?} vs {:?}",
                bin,
                direct
            );
        }
    }

    #[test]
    fn real_fft_matches_complex_fft() {
        for &n in &[2usize, 4, 16, 128] {
            let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() + 0.3).collect();
            let plan = RealFftPlan::new(n);
            let (mut spec, mut scratch) = (Vec::new(), Vec::new());
            plan.forward_into(&signal, &mut spec, &mut scratch);
            assert_eq!(spec.len(), n / 2 + 1);
            let mut full: Vec<Complex> = signal.iter().map(|&x| (x, 0.0)).collect();
            FftPlan::new(n).forward(&mut full);
            for k in 0..=n / 2 {
                assert!(
                    (spec[k].0 - full[k].0).abs() < 1e-9 && (spec[k].1 - full[k].1).abs() < 1e-9,
                    "n={n} bin {k}: {:?} vs {:?}",
                    spec[k],
                    full[k]
                );
            }
        }
    }

    #[test]
    fn real_fft_roundtrip_is_identity() {
        for &n in &[2usize, 8, 64, 512] {
            let signal: Vec<f64> = (0..n)
                .map(|i| (i as f64 * 1.3).cos() * 2.0 - 0.5 * i as f64)
                .collect();
            let plan = RealFftPlan::new(n);
            let (mut spec, mut scratch, mut back) = (Vec::new(), Vec::new(), Vec::new());
            plan.forward_into(&signal, &mut spec, &mut scratch);
            plan.inverse_into(&spec, &mut back, &mut scratch);
            assert_eq!(back.len(), n);
            for (a, b) in signal.iter().zip(&back) {
                assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()), "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn convolution_matches_naive() {
        let a = [1.0, 2.0, -1.0, 0.5];
        let b = [3.0, -2.0, 1.0, 4.0, -1.0];
        let fast = convolve_real(&a, &b);
        let slow = naive_convolve(&a, &b);
        assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(&slow) {
            assert!((f - s).abs() < 1e-9, "{f} vs {s}");
        }
    }

    #[test]
    fn convolution_with_empty_is_empty() {
        assert!(convolve_real(&[], &[1.0]).is_empty());
        assert!(convolve_real(&[1.0], &[]).is_empty());
    }

    #[test]
    fn convolution_of_single_points() {
        let fast = convolve_real(&[3.0], &[-2.0]);
        assert_eq!(fast.len(), 1);
        assert!((fast[0] + 6.0).abs() < 1e-12);
    }

    #[test]
    fn sliding_dots_match_direct() {
        let series: Vec<f64> = (0..50).map(|i| (i as f64 * 0.7).sin()).collect();
        let query = &series[10..18];
        let fast = sliding_dot_products(query, &series);
        assert_eq!(fast.len(), 43);
        for j in 0..fast.len() {
            let direct: f64 = query
                .iter()
                .zip(&series[j..j + 8])
                .map(|(q, s)| q * s)
                .sum();
            assert!((fast[j] - direct).abs() < 1e-8, "offset {j}");
        }
    }

    #[test]
    fn sliding_dots_full_length_query() {
        let series = [1.0, -2.0, 3.0];
        let out = sliding_dot_products(&series, &series);
        assert_eq!(out.len(), 1);
        assert!((out[0] - 14.0).abs() < 1e-9);
    }

    /// Serializes the tests that mutate the global capacity knob
    /// against the tests that assert `Arc` identity on the global
    /// caches: a concurrently lowered capacity could otherwise evict a
    /// plan between two identity-checked lookups and flake the run.
    fn capacity_test_guard() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn plan_cache_reuses_one_plan_per_size() {
        let _guard = capacity_test_guard();
        let a = cached_real_plan(256);
        let b = cached_real_plan(256);
        assert!(Arc::ptr_eq(&a, &b), "same size must share one plan");
        let c = cached_real_plan(512);
        assert!(!Arc::ptr_eq(&a, &c));
        let d = cached_plan(64);
        let e = cached_plan(64);
        assert!(Arc::ptr_eq(&d, &e));
    }

    #[test]
    fn plan_cache_is_share_safe_across_threads() {
        let _guard = capacity_test_guard();
        let plans: Vec<Arc<RealFftPlan>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| cached_real_plan(1024)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for pair in plans.windows(2) {
            assert!(Arc::ptr_eq(&pair[0], &pair[1]));
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache: PlanCache<FftPlan> = PlanCache::new();
        let capacity = 2;
        let a = cache.get_or_insert_with(8, capacity, || FftPlan::new(8));
        let _b = cache.get_or_insert_with(16, capacity, || FftPlan::new(16));
        // Touch 8 so 16 becomes the LRU entry, then insert a third size.
        let a2 = cache.get_or_insert_with(8, capacity, || FftPlan::new(8));
        assert!(Arc::ptr_eq(&a, &a2), "hit must return the cached plan");
        let _c = cache.get_or_insert_with(32, capacity, || FftPlan::new(32));
        assert_eq!(cache.entries.len(), 2);
        assert!(cache.entries.contains_key(&8), "recently-used kept");
        assert!(cache.entries.contains_key(&32), "new entry kept");
        assert!(!cache.entries.contains_key(&16), "LRU entry evicted");
        // The evicted size rebuilds as a fresh allocation on next request.
        let b2 = cache.get_or_insert_with(16, capacity, || FftPlan::new(16));
        assert_eq!(b2.len(), 16);
    }

    #[test]
    fn evicted_plans_rebuild_bit_identical() {
        // Run a transform on a cached plan, churn the cache past its
        // bound so the plan is evicted and rebuilt, and re-run: every
        // output bit must match (plan construction is deterministic).
        let signal: Vec<f64> = (0..256)
            .map(|i| (i as f64 * 0.37).sin() * 2.5 - 0.4)
            .collect();
        let mut cache: PlanCache<RealFftPlan> = PlanCache::new();
        let capacity = 2;
        let plan = cache.get_or_insert_with(256, capacity, || RealFftPlan::new(256));
        let (mut spec_before, mut scratch) = (Vec::new(), Vec::new());
        plan.forward_into(&signal, &mut spec_before, &mut scratch);
        // Churn: two other sizes push 256 out of the bounded cache.
        let _ = cache.get_or_insert_with(512, capacity, || RealFftPlan::new(512));
        let _ = cache.get_or_insert_with(1024, capacity, || RealFftPlan::new(1024));
        assert!(!cache.entries.contains_key(&256), "256 must be evicted");
        let rebuilt = cache.get_or_insert_with(256, capacity, || RealFftPlan::new(256));
        assert!(
            !Arc::ptr_eq(&plan, &rebuilt),
            "rebuilt plan is a fresh allocation"
        );
        let mut spec_after = Vec::new();
        rebuilt.forward_into(&signal, &mut spec_after, &mut scratch);
        assert_eq!(spec_before, spec_after, "eviction must not change bits");
    }

    #[test]
    fn capacity_knob_clamps_and_returns_previous() {
        let _guard = capacity_test_guard();
        let initial = plan_cache_capacity();
        assert!(initial >= 1);
        let prev = set_plan_cache_capacity(0); // clamped to 1
        assert_eq!(prev, initial);
        assert_eq!(plan_cache_capacity(), 1);
        set_plan_cache_capacity(initial);
        assert_eq!(plan_cache_capacity(), initial);
    }

    #[test]
    fn lowering_capacity_evicts_populated_caches_immediately() {
        let _guard = capacity_test_guard();
        let initial = plan_cache_capacity();
        // Ensure the global complex cache holds at least two sizes.
        let _a = cached_plan(4);
        let _b = cached_plan(8);
        set_plan_cache_capacity(1);
        let complex_len = lock_cache(COMPLEX_PLANS.get().expect("populated above"))
            .entries
            .len();
        let real_len = REAL_PLANS
            .get()
            .map(|c| lock_cache(c).entries.len())
            .unwrap_or(0);
        set_plan_cache_capacity(initial);
        // The shrink must happen inside the setter, not on the next
        // insert — a hit-only workload never reaches the insert path.
        assert_eq!(complex_len, 1, "complex cache shrunk immediately");
        assert!(real_len <= 1, "real cache shrunk immediately");
        // Evicted sizes rebuild transparently.
        assert_eq!(cached_plan(4).len(), 4);
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(8), 8);
        assert_eq!(next_pow2(1000), 1024);
    }
}
