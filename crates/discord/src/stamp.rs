//! STAMP — the anytime matrix profile (Yeh et al., the paper's reference
//! \[21\]): one MASS distance profile per query window, `O(N² log N)` total.
//!
//! Slower asymptotically than STOMP but embarrassingly simple and anytime
//! (profiles converge monotonically as more queries are processed); we use
//! it as a cross-check of STOMP and in the matrix profile ablation bench.
//!
//! The production path runs on [`MassPrecomputed`]: the series spectrum
//! is transformed once and every query is answered against it with two
//! half-size real transforms, instead of re-transforming the series per
//! query. [`stamp_per_query_fft`] preserves the naive
//! one-`sliding_dot_products`-call-per-query path as the executable
//! specification and the bench baseline; the two are pinned to agree to
//! 1e-9 by the property tests.

use crate::dist::WindowStats;
use crate::mass::{mass_self, MassPrecomputed, MassScratch};
use crate::mass_seg::{MassBackend, SegScratch, SegmentedMass};
use crate::profile::{improves, MatrixProfile};
use crate::stomp::default_exclusion;

/// Computes the matrix profile via STAMP with exclusion half-width
/// `exclusion`, on the shared-spectrum MASS path.
pub fn stamp_with_exclusion(series: &[f64], m: usize, exclusion: usize) -> MatrixProfile {
    let mass = MassPrecomputed::new(series, m);
    let count = mass.window_count();
    let mut profile = vec![f64::INFINITY; count];
    let mut index = vec![usize::MAX; count];
    let mut scratch = MassScratch::default();
    let mut dp = Vec::new();
    for q in 0..count {
        mass.distance_profile_into(q, &mut scratch, &mut dp);
        update_from_profile(q, &dp, exclusion, &mut profile, &mut index);
    }
    MatrixProfile {
        m,
        exclusion,
        profile,
        index,
    }
}

/// STAMP with the default `m/2` exclusion zone.
pub fn stamp(series: &[f64], m: usize) -> MatrixProfile {
    stamp_with_exclusion(series, m, default_exclusion(m))
}

/// Batch STAMP on an explicit [`MassBackend`] — the versioned parity
/// contract's batch entry point. [`MassBackend::Exact`] is exactly
/// [`stamp_with_exclusion`] (bit-identical oracle);
/// [`MassBackend::Segmented`] runs every query on the block-transform
/// kernel's rolled centered-covariance path (queries ascend, each rolls
/// from its predecessor's row — see
/// [`crate::mass_seg::SegmentedMass::rolling_profile_into`]), producing
/// a profile within ≤1e-9 absolute of the exact one outside exclusion
/// zones, at `O(N²)` total instead of `O(N² log N)`.
pub fn stamp_with_backend(
    series: &[f64],
    m: usize,
    exclusion: usize,
    backend: MassBackend,
) -> MatrixProfile {
    match backend {
        MassBackend::Exact => stamp_with_exclusion(series, m, exclusion),
        MassBackend::Segmented => {
            let seg = SegmentedMass::new(series, m);
            let count = seg.window_count();
            let mut profile = vec![f64::INFINITY; count];
            let mut index = vec![usize::MAX; count];
            let mut scratch = SegScratch::default();
            let mut dp = Vec::new();
            for q in 0..count {
                seg.rolling_profile_into(q, &mut scratch, &mut dp);
                update_from_profile(q, &dp, exclusion, &mut profile, &mut index);
            }
            MatrixProfile {
                m,
                exclusion,
                profile,
                index,
            }
        }
    }
}

/// The pre-shared-spectrum STAMP: every query re-transforms the full
/// series (three full-size FFTs per query via
/// [`crate::fft::sliding_dot_products`]). Kept as the executable
/// specification and the baseline the perf suite measures the
/// shared-spectrum speedup against.
pub fn stamp_per_query_fft(series: &[f64], m: usize, exclusion: usize) -> MatrixProfile {
    let ws = WindowStats::new(series, m);
    let count = ws.count();
    let mut profile = vec![f64::INFINITY; count];
    let mut index = vec![usize::MAX; count];
    for q in 0..count {
        let dp = mass_self(series, q, &ws);
        update_from_profile(q, &dp, exclusion, &mut profile, &mut index);
    }
    MatrixProfile {
        m,
        exclusion,
        profile,
        index,
    }
}

/// Folds one query's distance profile into the running matrix profile,
/// updating both ends of every admissible pair under the shared
/// [`improves`] rule.
///
/// The `(distance, index)` tie-break matters here: with a strict `<`
/// fold, the index vector would depend on the order queries are
/// processed in (ties keep whichever query arrived first) — breaking
/// the anytime/parallel STAMP contract and disagreeing with STOMP on
/// exact ties. The lexicographic fold is order-independent, so STAMP,
/// anytime STAMP in any permutation, and parallel STAMP at any thread
/// count all land on the same index vector. Shared with
/// [`crate::anytime`].
pub(crate) fn update_from_profile(
    q: usize,
    dp: &[f64],
    exclusion: usize,
    profile: &mut [f64],
    index: &mut [usize],
) {
    for (j, &d) in dp.iter().enumerate() {
        if q.abs_diff(j) <= exclusion {
            continue;
        }
        // Update both ends: d(q, j) bounds profile[q] and profile[j].
        if improves(d, j, profile[q], index[q]) {
            profile[q] = d;
            index[q] = j;
        }
        if improves(d, q, profile[j], index[j]) {
            profile[j] = d;
            index[j] = q;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force;
    use crate::stomp::stomp_with_exclusion;

    fn test_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                (t * 0.21).sin() + 0.5 * (t * 0.07).cos() + ((i * 31) % 7) as f64 * 0.1
            })
            .collect()
    }

    #[test]
    fn stamp_matches_brute_force() {
        let series = test_series(120);
        let m = 10;
        let exc = m - 1;
        let fast = stamp_with_exclusion(&series, m, exc);
        let slow = brute_force(&series, m, exc);
        for i in 0..fast.len() {
            assert!(
                (fast.profile[i] - slow.profile[i]).abs() < 1e-6,
                "i={i}: {} vs {}",
                fast.profile[i],
                slow.profile[i]
            );
        }
    }

    #[test]
    fn stamp_matches_stomp() {
        let series = test_series(200);
        for &m in &[6usize, 12] {
            let a = stamp_with_exclusion(&series, m, m / 2);
            let b = stomp_with_exclusion(&series, m, m / 2);
            for i in 0..a.len() {
                assert!(
                    (a.profile[i] - b.profile[i]).abs() < 1e-6,
                    "m={m} i={i}: {} vs {}",
                    a.profile[i],
                    b.profile[i]
                );
            }
        }
    }

    #[test]
    fn shared_spectrum_matches_per_query_fft() {
        let series = test_series(250);
        for &m in &[5usize, 16] {
            let fast = stamp_with_exclusion(&series, m, m / 2);
            let naive = stamp_per_query_fft(&series, m, m / 2);
            assert_eq!(fast.index, naive.index);
            for i in 0..fast.len() {
                assert!(
                    (fast.profile[i] - naive.profile[i]).abs() < 1e-9,
                    "m={m} i={i}: {} vs {}",
                    fast.profile[i],
                    naive.profile[i]
                );
            }
        }
    }

    /// Exact distance ties (flat windows pair at exactly 0.0) must
    /// resolve to the same neighbor index in STAMP and STOMP: the
    /// smallest admissible index, per the shared `improves` rule. The
    /// old strict-`<` fold kept whichever query was processed first,
    /// so STAMP's index vector silently depended on query order.
    #[test]
    fn exact_ties_resolve_to_smallest_index() {
        // Three flat plateaus separated by wavy filler: every pair of
        // fully-flat windows is at distance exactly 0.0.
        let mut series = Vec::new();
        series.extend(std::iter::repeat_n(1.0, 8));
        series.extend((0..8).map(|i| (i as f64 * 0.9).sin()));
        series.extend(std::iter::repeat_n(5.0, 8));
        series.extend((0..8).map(|i| (i as f64 * 1.3).cos()));
        series.extend(std::iter::repeat_n(2.0, 8));
        let m = 4;
        let exc = m / 2;
        let a = stamp_with_exclusion(&series, m, exc);
        let b = stomp_with_exclusion(&series, m, exc);
        let tied: Vec<usize> = (0..a.len()).filter(|&i| b.profile[i] == 0.0).collect();
        assert!(tied.len() > 3, "expected several exact ties, got {tied:?}");
        let ws = WindowStats::new(&series, m);
        for &i in &tied {
            assert_eq!(a.profile[i], 0.0, "window {i}");
            assert_eq!(
                a.index[i], b.index[i],
                "window {i}: STAMP picked {} but STOMP picked {}",
                a.index[i], b.index[i]
            );
            // The winner is the *smallest* admissible index at distance 0.
            for j in 0..a.len() {
                if i.abs_diff(j) > exc && j < a.index[i] {
                    let flat_pair = ws.sigma[i] == 0.0 && ws.sigma[j] == 0.0;
                    assert!(
                        !flat_pair,
                        "window {i}: {j} ties at 0.0 but lost to {}",
                        a.index[i]
                    );
                }
            }
        }
    }

    #[test]
    fn segmented_backend_matches_exact_within_tolerance() {
        let series = test_series(300);
        let m = 12;
        let exc = m / 2;
        let exact = stamp_with_backend(&series, m, exc, MassBackend::Exact);
        let reference = stamp_with_exclusion(&series, m, exc);
        // The Exact arm IS the oracle, bit for bit.
        assert_eq!(exact.profile, reference.profile);
        assert_eq!(exact.index, reference.index);
        let seg = stamp_with_backend(&series, m, exc, MassBackend::Segmented);
        assert_eq!(seg.len(), reference.len());
        for i in 0..seg.len() {
            assert!(
                (seg.profile[i] - reference.profile[i]).abs() <= 1e-9,
                "i={i}: {} vs {}",
                seg.profile[i],
                reference.profile[i]
            );
        }
        // Top discord agrees (this fixture has no near-tie at the top).
        assert_eq!(seg.discords(1)[0].start, reference.discords(1)[0].start);
    }

    #[test]
    fn stamp_default_wrapper() {
        let series = test_series(60);
        let mp = stamp(&series, 8);
        assert_eq!(mp.len(), 53);
        assert_eq!(mp.exclusion, 4);
    }
}
