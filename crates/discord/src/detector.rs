//! The "Discord" baseline detector of the paper's evaluation: top-k
//! non-overlapping discords computed with the matrix profile (STOMP, the
//! paper's reference \[23\] implementation choice).

use crate::profile::Discord;
use crate::stomp::stomp_with_exclusion;

/// Configuration for discord-based detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiscordConfig {
    /// Sliding-window (discord) length.
    pub window: usize,
    /// Self-match exclusion half-width; `None` selects the discord
    /// definition's strict non-overlap (`window − 1`).
    pub exclusion: Option<usize>,
}

impl DiscordConfig {
    /// Strict non-overlapping discord definition for `window`.
    pub fn new(window: usize) -> Self {
        Self {
            window,
            exclusion: None,
        }
    }
}

/// Matrix-profile-based discord detector.
#[derive(Debug, Clone, Copy)]
pub struct DiscordDetector {
    config: DiscordConfig,
}

impl DiscordDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics when `window < 2`.
    pub fn new(config: DiscordConfig) -> Self {
        assert!(config.window >= 2, "window must be at least 2");
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> DiscordConfig {
        self.config
    }

    /// Returns the top-`k` non-overlapping discords of `series`.
    ///
    /// Returns an empty vector when the series is shorter than two
    /// windows (no non-self match exists).
    pub fn detect(&self, series: &[f64], k: usize) -> Vec<Discord> {
        let m = self.config.window;
        if series.len() < 2 * m {
            return Vec::new();
        }
        let exclusion = self.config.exclusion.unwrap_or(m - 1);
        let mp = stomp_with_exclusion(series, m, exclusion);
        mp.discords(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beats_with_outlier() -> (Vec<f64>, usize) {
        let period = 40;
        let mut s: Vec<f64> = (0..800)
            .map(|i| (i as f64 * std::f64::consts::TAU / period as f64).sin())
            .collect();
        let gt = 400;
        for (off, v) in s[gt..gt + period].iter_mut().enumerate() {
            *v = ((off as f64) / period as f64) * 2.0 - 1.0; // sawtooth period
        }
        (s, gt)
    }

    #[test]
    fn top_discord_hits_planted_anomaly() {
        let (series, gt) = beats_with_outlier();
        let det = DiscordDetector::new(DiscordConfig::new(40));
        let ds = det.detect(&series, 1);
        assert_eq!(ds.len(), 1);
        assert!(
            (gt as i64 - ds[0].start as i64).unsigned_abs() <= 40,
            "discord at {} vs gt {gt}",
            ds[0].start
        );
    }

    #[test]
    fn short_series_returns_empty() {
        let det = DiscordDetector::new(DiscordConfig::new(50));
        assert!(det.detect(&[0.0; 60], 3).is_empty());
    }

    #[test]
    fn candidates_non_overlapping() {
        let (series, _) = beats_with_outlier();
        let det = DiscordDetector::new(DiscordConfig::new(40));
        let ds = det.detect(&series, 3);
        for i in 0..ds.len() {
            for j in i + 1..ds.len() {
                assert!(
                    ds[i].start.abs_diff(ds[j].start) >= 40,
                    "{:?} overlaps {:?}",
                    ds[i],
                    ds[j]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "window must be")]
    fn tiny_window_panics() {
        DiscordDetector::new(DiscordConfig::new(1));
    }
}
