//! Z-normalized Euclidean distance machinery.
//!
//! Everything distance-based in this crate reduces to the identity
//! `d²(i, j) = 2m·(1 − (QT_{i,j} − m·μ_i·μ_j) / (m·σ_i·σ_j))` where `QT`
//! is the raw dot product of the two windows and `μ/σ` are their means and
//! *population* standard deviations. [`WindowStats`] precomputes `μ`, `σ`
//! for every window in O(N) via prefix sums.

use egi_tskit::stats::PrefixStats;
use egi_tskit::window::window_count;

/// Per-window mean and population standard deviation for a fixed window
/// length.
#[derive(Debug, Clone)]
pub struct WindowStats {
    /// Window length `m`.
    pub m: usize,
    /// `mu[i]` — mean of window starting at `i`.
    pub mu: Vec<f64>,
    /// `sigma[i]` — population stddev of window starting at `i`
    /// (0.0 for flat windows).
    pub sigma: Vec<f64>,
}

impl WindowStats {
    /// Computes stats for all windows of length `m` over `series`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `m > series.len()`.
    pub fn new(series: &[f64], m: usize) -> Self {
        assert!(m > 0, "window must be positive");
        assert!(m <= series.len(), "window longer than series");
        let ps = PrefixStats::new(series);
        Self::from_prefix(&ps, m)
    }

    /// Computes stats for all windows of length `m` from already-built
    /// prefix sums (the append path of the online monitor keeps one
    /// [`PrefixStats`] alive and rebuilds nothing).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `m > prefix.len()`.
    pub fn from_prefix(prefix: &PrefixStats, m: usize) -> Self {
        assert!(m > 0, "window must be positive");
        assert!(m <= prefix.len(), "window longer than series");
        let mut stats = Self {
            m,
            mu: Vec::new(),
            sigma: Vec::new(),
        };
        stats.push_windows(prefix);
        stats
    }

    /// Appends statistics for the windows the series gained since these
    /// stats were built. `prefix` must be the (extended) prefix sums of
    /// the same series.
    ///
    /// Existing entries are untouched and new entries run through the
    /// identical per-window arithmetic, so the result is **bit-identical**
    /// to [`WindowStats::new`] over the full series — the parity the
    /// online monitor's finished-profile contract rests on.
    ///
    /// # Panics
    ///
    /// Panics if `prefix` covers fewer windows than already present.
    pub fn extend_from_prefix(&mut self, prefix: &PrefixStats) {
        assert!(
            window_count(prefix.len(), self.m) >= self.count(),
            "prefix sums shorter than existing stats"
        );
        self.push_windows(prefix);
    }

    /// Recomputes every window's statistics from the **rebased** prefix
    /// sums of a front-evicted series (see
    /// [`PrefixStats::rebase`](egi_tskit::stats::PrefixStats::rebase)),
    /// reusing the existing allocations.
    ///
    /// Surviving windows cover the same raw points as before the
    /// eviction, but their mean/variance are derived from prefix-sum
    /// *differences*, and the rebased sums accumulate from a different
    /// origin — so the stored values are not bitwise reusable and the
    /// whole table is recomputed (`O(window count)`). The result is
    /// **bit-identical** to [`WindowStats::new`] over the suffix, which
    /// is what the eviction paths' suffix-parity contract needs.
    ///
    /// # Panics
    ///
    /// Panics if `prefix` covers fewer points than one window.
    pub fn rebase_from_prefix(&mut self, prefix: &PrefixStats) {
        assert!(self.m <= prefix.len(), "window longer than series");
        self.mu.clear();
        self.sigma.clear();
        self.push_windows(prefix);
    }

    /// Pushes stats for windows `self.count()..window_count(prefix)`.
    fn push_windows(&mut self, prefix: &PrefixStats) {
        let m = self.m;
        let count = window_count(prefix.len(), m);
        self.mu.reserve(count - self.mu.len());
        self.sigma.reserve(count - self.sigma.len());
        for i in self.mu.len()..count {
            let mean = prefix.range_mean(i, i + m);
            let var = prefix.range_variance_population(i, i + m);
            self.mu.push(mean);
            self.sigma.push(if egi_tskit::stats::is_flat(mean, var) {
                0.0
            } else {
                var.sqrt()
            });
        }
    }

    /// Number of windows.
    pub fn count(&self) -> usize {
        self.mu.len()
    }

    /// Z-normalized Euclidean distance between windows `i` and `j` given
    /// their raw dot product `qt`.
    ///
    /// Flat-window convention: two flat windows z-normalize to the same
    /// all-zeros vector (distance 0), while a flat vs. non-flat pair gets
    /// `√(2m)` — the distance of two *uncorrelated* windows, the neutral
    /// midpoint of the valid range `[0, 2√m]`. This keeps flat regions
    /// from ranking as either perfect matches or extreme discords.
    #[inline]
    pub fn dist(&self, i: usize, j: usize, qt: f64) -> f64 {
        let (si, sj) = (self.sigma[i], self.sigma[j]);
        if si == 0.0 && sj == 0.0 {
            return 0.0;
        }
        if si == 0.0 || sj == 0.0 {
            return (2.0 * self.m as f64).sqrt();
        }
        let m = self.m as f64;
        let corr = (qt - m * self.mu[i] * self.mu[j]) / (m * si * sj);
        // Clamp: |corr| can exceed 1 by float error.
        (2.0 * m * (1.0 - corr.clamp(-1.0, 1.0))).sqrt()
    }

    /// Z-normalized Euclidean distance between windows `i` and `j` given
    /// their **centered** covariance
    /// `cov = Σ_k (x_{i+k} − μ_i)(x_{j+k} − μ_j)` — the quantity the
    /// segmented backend's MPX-style rolling recurrence maintains.
    ///
    /// `cov` equals `qt − m·μ_i·μ_j` exactly in real arithmetic, so this
    /// applies the same flat-window conventions and correlation clamp as
    /// [`dist`](Self::dist); keeping the subtraction out of this method
    /// is what lets the rolling path avoid its catastrophic cancellation.
    #[inline]
    pub fn dist_centered(&self, i: usize, j: usize, cov: f64) -> f64 {
        let (si, sj) = (self.sigma[i], self.sigma[j]);
        if si == 0.0 && sj == 0.0 {
            return 0.0;
        }
        if si == 0.0 || sj == 0.0 {
            return (2.0 * self.m as f64).sqrt();
        }
        let m = self.m as f64;
        let corr = cov / (m * si * sj);
        (2.0 * m * (1.0 - corr.clamp(-1.0, 1.0))).sqrt()
    }
}

/// Direct z-normalized Euclidean distance between two equal-length slices
/// (the test oracle; `O(m)` with explicit normalization).
pub fn znorm_euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let mut za = a.to_vec();
    let mut zb = b.to_vec();
    egi_tskit::stats::znormalize(&mut za);
    egi_tskit::stats::znormalize(&mut zb);
    za.iter()
        .zip(&zb)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// The z-normalization inside `znorm_euclidean` uses the *sample*
    /// stddev while the dot-product identity uses the *population* stddev;
    /// distances therefore differ by the constant factor
    /// `√((m−1)/m)`, which cancels in all comparisons. The oracle test
    /// accounts for it explicitly.
    #[test]
    fn identity_matches_direct_distance() {
        let series: Vec<f64> = (0..60)
            .map(|i| (i as f64 * 0.9).sin() * 3.0 + i as f64 * 0.01)
            .collect();
        let m = 12;
        let ws = WindowStats::new(&series, m);
        for &(i, j) in &[(0usize, 30usize), (5, 17), (20, 40)] {
            let qt = dot(&series[i..i + m], &series[j..j + m]);
            let fast = ws.dist(i, j, qt);
            let direct = znorm_euclidean(&series[i..i + m], &series[j..j + m]);
            // direct normalizes by the sample stddev (larger by
            // √(m/(m−1))), so its distances are smaller by the inverse
            // factor; rescale up to the population convention.
            let rescaled = direct * (m as f64 / (m as f64 - 1.0)).sqrt();
            assert!(
                (fast - rescaled).abs() < 1e-6,
                "({i},{j}): fast {fast} vs direct {rescaled}"
            );
        }
    }

    #[test]
    fn self_distance_is_zero() {
        let series: Vec<f64> = (0..40).map(|i| ((i * i) as f64).sin()).collect();
        let m = 8;
        let ws = WindowStats::new(&series, m);
        for i in [0usize, 10, 32] {
            let qt = dot(&series[i..i + m], &series[i..i + m]);
            assert!(ws.dist(i, i, qt).abs() < 1e-6);
        }
    }

    #[test]
    fn identical_shape_at_different_scale_is_zero() {
        // Window j = 2 × window i + 5: identical after z-normalization.
        let base: Vec<f64> = (0..10).map(|i| (i as f64).sin()).collect();
        let mut series = base.clone();
        series.extend(base.iter().map(|v| v * 2.0 + 5.0));
        let ws = WindowStats::new(&series, 10);
        let qt = dot(&series[0..10], &series[10..20]);
        assert!(ws.dist(0, 10, qt) < 1e-6);
    }

    #[test]
    fn dist_centered_matches_dist_on_raw_dots() {
        let series: Vec<f64> = (0..80)
            .map(|i| (i as f64 * 0.7).sin() * 2.0 + ((i * 5) % 11) as f64 * 0.03)
            .collect();
        let m = 10;
        let ws = WindowStats::new(&series, m);
        for &(i, j) in &[(0usize, 30usize), (7, 55), (22, 41)] {
            let qt = dot(&series[i..i + m], &series[j..j + m]);
            let cov: f64 = series[i..i + m]
                .iter()
                .zip(&series[j..j + m])
                .map(|(&x, &y)| (x - ws.mu[i]) * (y - ws.mu[j]))
                .sum();
            let a = ws.dist(i, j, qt);
            let b = ws.dist_centered(i, j, cov);
            assert!((a - b).abs() < 1e-9, "({i},{j}): {a} vs {b}");
        }
        // Flat conventions carry over verbatim.
        let mut flat = vec![1.0; 10];
        flat.extend((0..10).map(|i| (i as f64).sin()));
        let wf = WindowStats::new(&flat, 10);
        assert_eq!(wf.dist_centered(0, 0, 0.0), 0.0);
        assert!((wf.dist_centered(0, 10, 0.3) - 20.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn flat_window_conventions() {
        let mut series = vec![1.0; 10];
        series.extend((0..10).map(|i| (i as f64).sin()));
        series.extend(vec![7.0; 10]);
        let ws = WindowStats::new(&series, 10);
        // flat vs flat → 0.
        assert_eq!(ws.dist(0, 20, dot(&series[0..10], &series[20..30])), 0.0);
        // flat vs wavy → sqrt(2m).
        let d = ws.dist(0, 10, dot(&series[0..10], &series[10..20]));
        assert!((d - 20.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn stats_count() {
        let series = vec![0.0; 100];
        let ws = WindowStats::new(&series, 10);
        assert_eq!(ws.count(), 91);
        assert!(ws.sigma.iter().all(|&s| s == 0.0));
    }

    #[test]
    #[should_panic(expected = "window longer")]
    fn oversized_window_panics() {
        WindowStats::new(&[1.0, 2.0], 3);
    }

    #[test]
    fn rebase_from_prefix_is_bit_identical_to_fresh_suffix_build() {
        let full: Vec<f64> = (0..120)
            .map(|i| (i as f64 * 0.53).sin() * 3.0 + ((i * 11) % 9) as f64 * 0.07)
            .collect();
        let m = 8;
        for cut in [0usize, 1, 40, 112] {
            let mut prefix = PrefixStats::new(&full);
            let mut stats = WindowStats::from_prefix(&prefix, m);
            prefix.rebase(&full[cut..]);
            stats.rebase_from_prefix(&prefix);
            let fresh = WindowStats::new(&full[cut..], m);
            assert_eq!(stats.mu, fresh.mu, "cut {cut}");
            assert_eq!(stats.sigma, fresh.sigma, "cut {cut}");
        }
    }

    #[test]
    #[should_panic(expected = "window longer")]
    fn rebase_below_one_window_panics() {
        let full = vec![0.5; 20];
        let mut prefix = PrefixStats::new(&full);
        let mut stats = WindowStats::from_prefix(&prefix, 6);
        prefix.rebase(&full[16..]);
        stats.rebase_from_prefix(&prefix);
    }

    #[test]
    fn extend_from_prefix_is_bit_identical_to_batch() {
        let full: Vec<f64> = (0..150)
            .map(|i| (i as f64 * 0.31).sin() * 4.0 + ((i * 7) % 13) as f64 * 0.05)
            .collect();
        let m = 9;
        for split in [m, m + 1, 75, 149] {
            let mut prefix = PrefixStats::new(&full[..split]);
            let mut inc = WindowStats::from_prefix(&prefix, m);
            for chunk in full[split..].chunks(11) {
                prefix.extend(chunk);
                inc.extend_from_prefix(&prefix);
            }
            let batch = WindowStats::new(&full, m);
            assert_eq!(inc.mu, batch.mu, "split {split}");
            assert_eq!(inc.sigma, batch.sigma, "split {split}");
        }
    }
}
