//! Online (append-to-series) discord monitoring.
//!
//! [`StreamingDiscordMonitor`] owns a growing time series and keeps its
//! matrix profile — and therefore its discord set — current as points
//! are appended, under hard wall-clock latency budgets between appends.
//! It is the online driver the ROADMAP's production north-star asks for:
//! ingest a chunk of live traffic, spend a bounded slice of time
//! tightening the profile, answer "best discords so far", repeat.
//!
//! # Architecture
//!
//! Three layers cooperate:
//!
//! * [`MassPrecomputed::append`](crate::mass::MassPrecomputed::append) grows the series in place: prefix-sum
//!   window statistics continue their running totals, the padded FFT
//!   buffer gains only the new tail (re-laid-out on power-of-two
//!   growth, when the plan swaps to the next cached size), and the
//!   series spectrum is re-transformed on the process-wide cached plan.
//!   After any append schedule the struct is **bit-identical** to a
//!   fresh build over the full series.
//! * The monitor maintains an **exact fold**: the partial matrix
//!   profile folded from distance profiles computed against the
//!   *current* spectrum, under the shared `(distance, index)` rule of
//!   [`crate::profile::improves`]. Once every window has been processed
//!   as a query in the current epoch, the fold is bit-identical to a
//!   from-scratch [`stamp()`](crate::stamp::stamp) on the full series.
//! * A **carry-over** layer keeps the evidence accumulated before the
//!   latest append. Those folds were computed against a shorter
//!   series' spectrum; they are numerically within FFT round-off
//!   (~1e-9) of the current-spectrum values but not bitwise equal, so
//!   they serve [`StreamingDiscordMonitor::snapshot`] (live monitoring
//!   wants the tightest available bound *now*) and never contaminate
//!   the exact fold.
//!
//! # Why appends re-enqueue old queries
//!
//! An FFT's rounding depends on its transform length, so the same
//! mathematical distance computed against the grown series' spectrum
//! differs in the last bits from the value computed before the append.
//! A finished profile that mixed pre- and post-append folds would
//! therefore disagree with batch STAMP at the ulp level — and the
//! crate's contract (PR 1/2 standard) is *bit*-identity. The monitor
//! resolves the tension by priority, not by discarding work:
//!
//! 1. **fresh queries** (the windows the append created) run first —
//!    they are the only ones that carry genuinely new information, so
//!    snapshot quality after an append needs exactly `chunk` queries;
//! 2. never-processed older queries run next;
//! 3. queries already processed in an earlier epoch re-run last — pure
//!    numerical refresh, deferred until the stream goes quiet.
//!
//! Between appends the carry-over keeps every pair ever examined in the
//! live view, so *new points only add candidate queries* as far as
//! monitoring is concerned; the re-runs exist solely to restore
//! bit-exactness once the monitor catches up.
//!
//! # Sliding-window eviction
//!
//! [`StreamingDiscordMonitor::evict`] retires the oldest points, and
//! [`StreamingDiscordMonitor::retain_last`] installs a retention policy
//! that trims automatically after every append — together they bound
//! the monitor's memory for indefinitely-running streams. The contract
//! mirrors the append side one level up: **after any interleaving of
//! appends and evictions, [`finish`](StreamingDiscordMonitor::finish)
//! is bit-identical to a fresh batch [`stamp()`](crate::stamp::stamp)
//! over the surviving suffix** (property-tested). All indices are
//! *local to the live window*; the global position of local index `i`
//! is `stream_offset() + i` via
//! [`StreamingDiscordMonitor::stream_offset`].
//!
//! ## Eviction cost model (and why evidence is discarded)
//!
//! Appending only *adds* candidate neighbors, so pre-append evidence
//! keeps its meaning and is preserved (the carry-over). Eviction is the
//! opposite: it *removes* candidates, so a pre-eviction profile entry
//! may cite a neighbor that no longer exists — and since the suffix
//! profile's nearest-neighbor distances can only be **larger** than the
//! full-series ones, stale entries would under-report discord distances
//! and point outside the live window. The monitor therefore drops the
//! exact fold *and* the carry on eviction and re-enqueues every
//! surviving window; snapshots restart from `+∞` and re-tighten as
//! queries run. Per eviction of `c` points the immediate cost is the
//! [`MassPrecomputed::evict_front`](crate::mass::MassPrecomputed::evict_front) re-transform (`O(S log S)` at the
//! shrunken padded size `S`, plus `O(N − c)` statistics
//! re-accumulation — see its docs for why no cached state survives a
//! front truncation), and restoring full snapshot coverage costs one
//! query per surviving window, paid through the usual
//! [`step`](StreamingDiscordMonitor::step) budget. As with appends,
//! **callers should batch evictions**: the re-transform amortizes to
//! `O((S log S)/c)` per retired point.
//!
//! # Convergence contract
//!
//! * Within an epoch (between appends), snapshots tighten
//!   monotonically, exactly as [`crate::anytime`].
//! * Across an append, the snapshot is unchanged (new entries start at
//!   `+∞`) and then resumes tightening.
//! * When the monitor catches up ([`StreamingDiscordMonitor::is_current`]),
//!   the stale carry is dropped and the snapshot equals the exact fold;
//!   entries may move by FFT round-off (≤ ~1e-9) at that transition,
//!   which is the only departure from bitwise monotonicity.
//! * [`StreamingDiscordMonitor::finish`] (and `finish_parallel`, for
//!   every rayon worker count) returns a profile bit-identical to
//!   [`stamp_with_exclusion`](crate::stamp::stamp_with_exclusion) on
//!   the full series — property-tested across append schedules, seeds,
//!   chunk sizes, and thread counts.
//!
//! # Versioned parity contract (backend selection)
//!
//! Everything above describes the **default** backend,
//! [`MassBackend::Exact`]. The monitor can instead run on
//! [`MassBackend::Segmented`] via
//! [`StreamingDiscordMonitor::with_backend`]; the two sides of the
//! contract are:
//!
//! * **`Exact` — the bit-identical oracle.** Monolithic spectrum;
//!   `append` re-transforms the whole padded buffer (`O(S log S)` in
//!   the series length `S`); finished profiles are bitwise equal to
//!   batch [`stamp()`](crate::stamp::stamp). Every pre-existing test
//!   and CI bit-parity gate runs on this backend, byte-for-byte
//!   unchanged.
//! * **`Segmented` — the toleranced fast path.** Block spectra
//!   ([`crate::mass_seg::SegmentedMass`]): `append` costs
//!   `O(chunk + B log B)` (tail block(s) only) and `evict` costs
//!   `O(window count)` statistics rebase with **zero** FFT work, both
//!   independent of the series length; per-query refresh rolls by the
//!   MPX-style centered-covariance recurrence. Finished profiles agree
//!   with the exact backend to **≤ 1e-9 absolute** outside exclusion
//!   zones (property-tested in `tests/segmented_proptests.rs`), not
//!   bitwise.
//!
//! Two behavioral differences follow from the looser guarantee. The
//! segmented fold is **kept across appends** (the ≤1e-9 contract
//! absorbs the per-generation FFT-layout jitter the exact backend must
//! re-run queries to erase), so appends enqueue only the fresh windows
//! and there is no catch-up backlog — the key to the backend's
//! sustained ingest throughput. And queries are processed in ascending
//! order rather than the seeded shuffle, which keeps consecutive
//! queries on the rolled recurrence; the seed only matters for `Exact`.
//! Eviction semantics are identical on both backends: evidence is
//! discarded and every surviving window re-enqueued, because stale
//! entries may cite retired neighbors regardless of kernel.

use std::collections::VecDeque;
use std::io::{Read, Write};

/// The shared per-session telemetry snapshot, re-exported from
/// [`egi_obs`] for callers of [`StreamingDiscordMonitor::metrics`].
pub use egi_obs::SessionStats;
/// The persistence contract implemented by the monitor, re-exported
/// from [`egi_tskit::checkpoint`]: save at any point of an
/// append/evict/step schedule, restore, replay the rest — the finished
/// profile is bit-identical to the uninterrupted run.
pub use egi_tskit::checkpoint::{Checkpoint, CheckpointError};
use egi_tskit::checkpoint::{CheckpointReader, CheckpointWriter, FieldReader, FieldWriter};
use egi_tskit::evict::validate_evict;
/// The shared eviction error of both streaming subsystems, re-exported
/// from [`egi_tskit::evict`] for callers of
/// [`StreamingDiscordMonitor::evict`] /
/// [`StreamingDiscordMonitor::retain_last`].
pub use egi_tskit::evict::EvictError;
use egi_tskit::session::StreamClock;
/// The shared session contract (and its budgeted drivers), re-exported
/// from [`egi_tskit::session`]: import it to drive the monitor
/// generically (e.g. from an `egi-serve` fleet).
pub use egi_tskit::session::StreamSession;
use rayon::prelude::*;

use crate::anytime::pseudo_random_order;
use crate::mass::{MassPrecomputed, MassScratch};
use crate::mass_seg::{EngineScratch, MassBackend, MassEngine, SegmentedMass, MAX_ROLL_CHAIN};
use crate::profile::{merge_min_into, Discord, MatrixProfile};
use crate::stamp::update_from_profile;
use crate::stomp::default_exclusion;

/// Seed used by [`StreamingDiscordMonitor::new`] when the caller does
/// not pick one.
pub const DEFAULT_MONITOR_SEED: u64 = 0x5EED_CAFE;

/// An online discord monitor over an append-only time series.
///
/// See the [module docs](self) for the architecture, the exact-fold /
/// carry-over split, and the convergence contract.
///
/// # Examples
///
/// ```
/// use egi_discord::streaming::StreamingDiscordMonitor;
///
/// // A clean sine with one corrupted beat in the second half.
/// let mut series: Vec<f64> = (0..256).map(|i| (i as f64 * 0.4).sin()).collect();
/// for (k, v) in series[180..190].iter_mut().enumerate() {
///     *v += (k as f64 * 1.7).cos() * 2.0;
/// }
///
/// let m = 16;
/// let mut monitor = StreamingDiscordMonitor::new(m);
/// monitor.append(&series[..128]);          // warm-up batch
/// monitor.run_for(usize::MAX);             // catch up completely
/// for chunk in series[128..].chunks(32) {
///     monitor.append(chunk);               // live traffic arrives…
///     monitor.run_for(chunk.len());        // …refresh the new windows
/// }
/// let top = monitor.discords(1);           // best discord so far
/// assert!((170..=190).contains(&top[0].start), "found {}", top[0].start);
///
/// // Once caught up, the profile is bit-identical to batch STAMP.
/// let finished = monitor.finish();
/// let batch = egi_discord::stamp(&series, m);
/// assert_eq!(finished.profile, batch.profile);
/// assert_eq!(finished.index, batch.index);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingDiscordMonitor {
    m: usize,
    exclusion: usize,
    seed: u64,
    /// Epoch (salts the per-epoch query order), stream offset, and
    /// retention bookkeeping — the [`StreamClock`] shared by every
    /// [`StreamSession`] implementor.
    clock: StreamClock,
    /// Which MASS kernel backs the monitor (see the [module docs](self)
    /// "versioned parity contract" section).
    backend: MassBackend,
    /// Points buffered before the series reaches `m` (no windows yet).
    warmup: Vec<f64>,
    mass: Option<MassEngine>,
    /// Queries to process in the current epoch: fresh windows first,
    /// then never-processed older windows, then numerical re-runs.
    pending: VecDeque<usize>,
    /// Queries already folded in the current epoch, in processing order.
    done: Vec<usize>,
    /// The exact fold: evidence computed against the current spectrum.
    fold_profile: Vec<f64>,
    fold_index: Vec<usize>,
    /// Pre-append evidence (within FFT round-off of exact); dropped the
    /// moment the exact fold reaches full coverage.
    carry: Option<(Vec<f64>, Vec<usize>)>,
    scratch: EngineScratch,
    dp: Vec<f64>,
    /// Lifetime telemetry (appends, queries served, staleness) — pure
    /// `u64` bookkeeping, deliberately outside the checkpoint payload
    /// and every parity contract.
    stats: SessionStats,
}

impl StreamingDiscordMonitor {
    /// Builds an empty monitor for window length `m` with the default
    /// `m/2` exclusion zone and [`DEFAULT_MONITOR_SEED`].
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Self {
        Self::with_seed(m, default_exclusion(m), DEFAULT_MONITOR_SEED)
    }

    /// Builds an empty monitor with an explicit exclusion half-width.
    pub fn with_exclusion(m: usize, exclusion: usize) -> Self {
        Self::with_seed(m, exclusion, DEFAULT_MONITOR_SEED)
    }

    /// Builds an empty monitor with an explicit exclusion half-width
    /// and query-order seed. The seed affects only the order pending
    /// queries are processed in, never any finished profile.
    pub fn with_seed(m: usize, exclusion: usize, seed: u64) -> Self {
        Self::with_backend(m, exclusion, seed, MassBackend::Exact)
    }

    /// Builds an empty monitor on an explicit [`MassBackend`] — the
    /// versioned parity contract's selection point (see the
    /// [module docs](self)). `Exact` is what every other constructor
    /// picks; `Segmented` trades bitwise batch parity for `O(chunk)`
    /// appends/evictions and a toleranced (≤1e-9) profile.
    pub fn with_backend(m: usize, exclusion: usize, seed: u64, backend: MassBackend) -> Self {
        assert!(m > 0, "window must be positive");
        Self {
            m,
            exclusion,
            seed,
            clock: StreamClock::new(),
            backend,
            warmup: Vec::new(),
            mass: None,
            pending: VecDeque::new(),
            done: Vec::new(),
            fold_profile: Vec::new(),
            fold_index: Vec::new(),
            carry: None,
            scratch: EngineScratch::default(),
            dp: Vec::new(),
            stats: SessionStats::default(),
        }
    }

    /// Which MASS kernel backs this monitor.
    pub fn backend(&self) -> MassBackend {
        self.backend
    }

    /// Window length `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Exclusion half-width.
    pub fn exclusion(&self) -> usize {
        self.exclusion
    }

    /// Points ingested so far.
    pub fn series_len(&self) -> usize {
        match &self.mass {
            Some(mass) => mass.series().len(),
            None => self.warmup.len(),
        }
    }

    /// The full series ingested so far.
    pub fn series(&self) -> &[f64] {
        match &self.mass {
            Some(mass) => mass.series(),
            None => &self.warmup,
        }
    }

    /// Number of sliding windows (profile length); zero until `m`
    /// points have arrived.
    pub fn window_count(&self) -> usize {
        self.mass.as_ref().map_or(0, MassEngine::window_count)
    }

    /// Queries awaiting processing in the current epoch (fresh windows
    /// plus numerical re-runs scheduled by appends).
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Queries folded since the last append.
    pub fn processed(&self) -> usize {
        self.done.len()
    }

    /// Ingest events (appends and evictions) seen so far.
    pub fn epochs(&self) -> u64 {
        self.clock.epochs()
    }

    /// Points retired from the front of the stream so far. Every index
    /// the monitor reports (profile indices, discord starts) is local
    /// to the live window; its global stream position is
    /// `stream_offset() + index`.
    pub fn stream_offset(&self) -> usize {
        self.clock.offset()
    }

    /// The retention policy installed by
    /// [`StreamingDiscordMonitor::retain_last`], if any.
    pub fn retention(&self) -> Option<usize> {
        self.clock.retention()
    }

    /// Capacity (in `f64`s) retained by the live series buffer — cheap
    /// accessor for memory-bound assertions on eviction workloads.
    pub fn series_capacity(&self) -> usize {
        match &self.mass {
            Some(mass) => mass.series_capacity(),
            None => self.warmup.capacity(),
        }
    }

    /// Current FFT transform size (0 before the first window
    /// materializes): the padded size on the exact backend — bounded by
    /// `O(retention)` under a
    /// [`retain_last`](StreamingDiscordMonitor::retain_last) policy —
    /// or the **constant** per-block size `2B` on the segmented one.
    pub fn padded_size(&self) -> usize {
        self.mass.as_ref().map_or(0, MassEngine::padded_size)
    }

    /// Capacity (in `f64`s) retained by the append/evict-path padded
    /// buffer — cheap accessor for memory-bound assertions.
    pub fn padded_capacity(&self) -> usize {
        self.mass.as_ref().map_or(0, MassEngine::padded_capacity)
    }

    /// Block-store shape `(block_count, block_size, spectra_capacity)`
    /// of the segmented backend — `None` before the first window or on
    /// the exact backend. Memory-bound tests assert blocks + spectra
    /// stay `O(n + chunk)` under a
    /// [`retain_last`](StreamingDiscordMonitor::retain_last) policy.
    pub fn block_store(&self) -> Option<(usize, usize, usize)> {
        self.mass.as_ref().and_then(MassEngine::block_store)
    }

    /// `true` once the exact fold covers every window of the current
    /// series — from here, [`StreamingDiscordMonitor::snapshot`] is
    /// bit-identical to batch STAMP on the ingested series.
    pub fn is_current(&self) -> bool {
        self.pending.is_empty()
    }

    /// Lifetime telemetry for this monitor: appends, evictions,
    /// queries served, and staleness (points appended since the fold
    /// last caught up). Pure `u64` counters — reading or keeping them
    /// never touches the numeric path — and deliberately not part of
    /// checkpoints (a restored monitor starts from zero).
    pub fn metrics(&self) -> SessionStats {
        self.stats
    }

    /// Deterministic processing order for `fresh` new queries of the
    /// current epoch: a seeded shuffle on the exact backend (anytime
    /// coverage spreads evenly), ascending on the segmented one (each
    /// query rolls from its predecessor's covariance row, so order is
    /// the throughput lever there).
    fn epoch_order(&self, offset: usize, fresh: usize) -> Vec<usize> {
        if self.backend == MassBackend::Segmented {
            return (offset..offset + fresh).collect();
        }
        let salt = self
            .seed
            .wrapping_add(self.clock.epochs().wrapping_mul(0x9E37_79B9_7F4A_7C15));
        pseudo_random_order(fresh, salt)
            .into_iter()
            .map(|i| i + offset)
            .collect()
    }

    /// Ingests new points. Never blocks on profile work: the append
    /// cost is the spectrum refresh of [`MassPrecomputed::append`](crate::mass::MassPrecomputed::append)
    /// (plus `O(1)` bookkeeping per already-processed query), and all
    /// query processing is deferred to [`step`](Self::step) /
    /// [`run_until`](Self::run_until) so the caller controls the
    /// latency budget.
    ///
    /// New windows are enqueued ahead of everything else; queries
    /// processed in earlier epochs are re-enqueued last (see the
    /// [module docs](self) for why bit-exactness requires that).
    pub fn append(&mut self, points: &[f64]) {
        if points.is_empty() {
            return;
        }
        let span = egi_obs::SpanTimer::start();
        self.clock.record_append();
        self.ingest(points);
        let excess = self.clock.excess(self.series_len());
        if excess > 0 {
            self.evict(excess)
                .expect("retention >= m leaves a viable suffix");
        }
        self.stats
            .record_append(points.len() as u64, self.pending.is_empty());
        span.record(egi_obs::histogram!("egi_monitor_append_nanos"));
    }

    fn ingest(&mut self, points: &[f64]) {
        match &mut self.mass {
            None => {
                self.warmup.extend_from_slice(points);
                if self.warmup.len() < self.m {
                    return;
                }
                let mass = MassEngine::new(&self.warmup, self.m, self.backend);
                let count = mass.window_count();
                self.fold_profile = vec![f64::INFINITY; count];
                self.fold_index = vec![usize::MAX; count];
                self.mass = Some(mass);
                self.pending = self.epoch_order(0, count).into();
                self.warmup = Vec::new();
            }
            Some(mass) => {
                let old_count = mass.window_count();
                mass.append(points);
                let new_count = mass.window_count();
                if self.backend == MassBackend::Segmented {
                    // Toleranced contract: pre-append evidence stays in
                    // the fold (its per-generation FFT jitter fits the
                    // ≤1e-9 budget), and the symmetric per-query fold
                    // means the fresh queries alone cover every
                    // (old, new) pair — no carry, no re-runs. This is
                    // the backend's sustained-throughput win: an append
                    // of c points enqueues exactly c queries.
                    self.fold_profile.resize(new_count, f64::INFINITY);
                    self.fold_index.resize(new_count, usize::MAX);
                    let mut pending =
                        VecDeque::from(self.epoch_order(old_count, new_count - old_count));
                    pending.append(&mut self.pending);
                    self.pending = pending;
                    return;
                }
                // Preserve pre-append evidence for live snapshots…
                let (cp, ci) = self.carry.get_or_insert_with(|| {
                    (vec![f64::INFINITY; old_count], vec![usize::MAX; old_count])
                });
                cp.resize(new_count, f64::INFINITY);
                ci.resize(new_count, usize::MAX);
                merge_min_into(cp, ci, &self.fold_profile, &self.fold_index);
                // …and restart the exact fold against the new spectrum.
                self.fold_profile.clear();
                self.fold_profile.resize(new_count, f64::INFINITY);
                self.fold_index.clear();
                self.fold_index.resize(new_count, usize::MAX);
                let mut pending =
                    VecDeque::from(self.epoch_order(old_count, new_count - old_count));
                pending.append(&mut self.pending);
                pending.extend(self.done.drain(..));
                self.pending = pending;
            }
        }
    }

    /// Retires the oldest `count` points from the live window. After
    /// the eviction the monitor behaves — bit for bit, for every future
    /// operation — like a fresh monitor that ingested only the
    /// surviving suffix (plus the [`stream_offset`] bookkeeping), so
    /// [`finish`](Self::finish) lands on batch
    /// [`stamp_with_exclusion`](crate::stamp::stamp_with_exclusion)
    /// over that suffix.
    ///
    /// All accumulated evidence (exact fold and carry-over) is
    /// discarded and every surviving window re-enqueued — eviction
    /// shrinks the candidate-pair set, so pre-eviction profile entries
    /// are no longer upper bounds and may cite retired neighbors (see
    /// the [module docs](self) for the full cost model).
    ///
    /// # Errors
    ///
    /// Rejected atomically (state untouched) when `count` exceeds the
    /// live point count ([`EvictError::PastEnd`]) or a non-empty suffix
    /// shorter than `m` would survive ([`EvictError::BelowMinimum`]).
    /// Evicting *everything* is allowed: the monitor resets and the
    /// next append starts a fresh warm-up.
    ///
    /// [`stream_offset`]: Self::stream_offset
    pub fn evict(&mut self, count: usize) -> Result<(), EvictError> {
        validate_evict(self.series_len(), count, self.m)?;
        if count == 0 {
            return Ok(());
        }
        let span = egi_obs::SpanTimer::start();
        let live = self.series_len();
        self.clock.record_evict(count);
        self.pending.clear();
        self.done.clear();
        self.carry = None;
        if self.mass.is_none() {
            // Warm-up phase: the only valid non-zero eviction is the
            // full drain (validated above).
            self.warmup.clear();
        } else if count == live {
            self.mass = None;
            self.fold_profile.clear();
            self.fold_index.clear();
        } else {
            let mass = self.mass.as_mut().expect("checked above");
            mass.evict_front(count);
            let windows = mass.window_count();
            self.fold_profile.clear();
            self.fold_profile.resize(windows, f64::INFINITY);
            self.fold_index.clear();
            self.fold_index.resize(windows, usize::MAX);
            self.pending = self.epoch_order(0, windows).into();
        }
        self.stats
            .record_evict(count as u64, self.pending.is_empty());
        span.record(egi_obs::histogram!("egi_monitor_evict_nanos"));
        Ok(())
    }

    /// Installs a sliding-window retention policy and trims the live
    /// window to at most `n` points now and after every future append —
    /// the bounded-memory mode for unbounded streams. Returns how many
    /// points the immediate trim retired.
    ///
    /// # Errors
    ///
    /// [`EvictError::BelowMinimum`] when `n < m` (the policy could
    /// never keep a viable window); the state is untouched.
    ///
    /// # Examples
    ///
    /// ```
    /// use egi_discord::streaming::StreamingDiscordMonitor;
    ///
    /// let series: Vec<f64> = (0..600)
    ///     .map(|i| (i as f64 * 0.3).sin() + ((i * 13) % 7) as f64 * 0.05)
    ///     .collect();
    /// let m = 16;
    /// let mut monitor = StreamingDiscordMonitor::new(m);
    /// monitor.retain_last(256).unwrap();
    /// for chunk in series.chunks(64) {
    ///     monitor.append(chunk); // auto-trims to the last 256 points
    /// }
    /// assert_eq!(monitor.series_len(), 256);
    /// assert_eq!(monitor.stream_offset(), 600 - 256);
    ///
    /// // The finished profile is bit-identical to batch STAMP over the
    /// // surviving suffix.
    /// let finished = monitor.finish();
    /// let batch = egi_discord::stamp(&series[600 - 256..], m);
    /// assert_eq!(finished.profile, batch.profile);
    /// assert_eq!(finished.index, batch.index);
    /// ```
    pub fn retain_last(&mut self, n: usize) -> Result<usize, EvictError> {
        if n < self.m {
            return Err(EvictError::BelowMinimum {
                remaining: n,
                minimum: self.m,
            });
        }
        self.clock.set_retention(n);
        let excess = self.clock.excess(self.series_len());
        if excess > 0 {
            self.evict(excess)?;
        }
        Ok(excess)
    }

    /// Processes the next pending query into the exact fold. Returns
    /// `false` when the monitor is already current (or has no windows).
    pub fn step(&mut self) -> bool {
        let Some(mass) = &self.mass else {
            return false;
        };
        let Some(q) = self.pending.pop_front() else {
            return false;
        };
        mass.distance_profile_into(q, &mut self.scratch, &mut self.dp);
        update_from_profile(
            q,
            &self.dp,
            self.exclusion,
            &mut self.fold_profile,
            &mut self.fold_index,
        );
        self.done.push(q);
        if self.pending.is_empty() {
            // Full coverage on the current spectrum: the stale carry can
            // only differ in the last bits, so drop it and let snapshots
            // return the exact (batch-bit-identical) profile.
            self.carry = None;
        }
        self.stats.record_step(self.pending.is_empty());
        true
    }

    /// Releases the slack capacity the streaming buffers accumulated —
    /// the memory-reclamation counterpart of
    /// [`retain_last`](Self::retain_last), mirroring
    /// `StreamingEnsembleDetector::compact` for API symmetry.
    ///
    /// Eviction truncates *lengths* but deliberately keeps *capacity*
    /// (the steady-state append/evict cycle reuses it); after a heavy
    /// one-off eviction that capacity is dead weight. `compact` shrinks
    /// the series buffer, the padded FFT buffer, the cached spectra
    /// (per-block on the segmented backend), and the per-query scratch
    /// down to the live working set. Purely an allocation-level
    /// operation: no observable state changes, and every parity
    /// contract is untouched.
    pub fn compact(&mut self) {
        if let Some(mass) = &mut self.mass {
            mass.compact();
        }
        self.warmup.shrink_to_fit();
        self.pending.shrink_to_fit();
        self.done.shrink_to_fit();
        self.fold_profile.shrink_to_fit();
        self.fold_index.shrink_to_fit();
        self.dp.shrink_to_fit();
        self.scratch = EngineScratch::default();
    }

    /// The current best-known matrix profile: the exact fold min-merged
    /// with the pre-append carry-over. Entries no processed query has
    /// reached are `+∞` / `usize::MAX`; every entry is an upper bound
    /// on the batch profile of the ingested series, up to FFT round-off
    /// (carry-over evidence was computed against a shorter series'
    /// spectrum and may sit ~1e-9 below the batch value — see the
    /// [module docs](self); once
    /// [`is_current`](StreamingDiscordMonitor::is_current) the bound is
    /// exact and bitwise).
    pub fn snapshot(&self) -> MatrixProfile {
        let mut profile = self.fold_profile.clone();
        let mut index = self.fold_index.clone();
        if let Some((cp, ci)) = &self.carry {
            merge_min_into(&mut profile, &mut index, cp, ci);
        }
        MatrixProfile {
            m: self.m,
            exclusion: self.exclusion,
            profile,
            index,
        }
    }

    /// Top-`k` non-overlapping discords of the current snapshot — the
    /// "best discords so far" answer.
    pub fn discords(&self, k: usize) -> Vec<Discord> {
        self.snapshot().discords(k)
    }

    /// Processes every pending query and returns the finished profile —
    /// bit-identical to
    /// [`stamp_with_exclusion`](crate::stamp::stamp_with_exclusion) on
    /// the full ingested series.
    pub fn finish(&mut self) -> MatrixProfile {
        while self.step() {}
        self.snapshot()
    }

    /// Like [`StreamingDiscordMonitor::finish`], but fans the pending
    /// queries out across rayon workers (per-worker partial folds
    /// merged under the shared rule, as in
    /// [`crate::anytime::AnytimeStamp::finish_parallel`]) —
    /// bit-identical to the sequential result for every worker count.
    pub fn finish_parallel(&mut self) -> MatrixProfile {
        let threads = rayon::current_num_threads();
        if self.mass.is_none() || threads <= 1 || self.pending.len() <= 1 {
            return self.finish();
        }
        let Some(MassEngine::Exact(mass)) = self.mass.as_ref() else {
            // Segmented queries roll sequentially from their
            // predecessor's covariance row; fanning them out would
            // force an FFT reseed per worker chunk and lose the point.
            return self.finish();
        };
        let remaining: Vec<usize> = self.pending.drain(..).collect();
        let count = mass.window_count();
        let exclusion = self.exclusion;
        let chunk_len = remaining.len().div_ceil(threads);
        let partials: Vec<(Vec<f64>, Vec<usize>)> = remaining
            .chunks(chunk_len)
            .map(<[usize]>::to_vec)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|chunk| {
                let mut scratch = MassScratch::default();
                let mut dp = Vec::new();
                let mut profile = vec![f64::INFINITY; count];
                let mut index = vec![usize::MAX; count];
                for q in chunk {
                    mass.distance_profile_into(q, &mut scratch, &mut dp);
                    update_from_profile(q, &dp, exclusion, &mut profile, &mut index);
                }
                (profile, index)
            })
            .collect();
        for (profile, index) in partials {
            merge_min_into(
                &mut self.fold_profile,
                &mut self.fold_index,
                &profile,
                &index,
            );
        }
        self.stats.steps += remaining.len() as u64;
        self.stats.caught_up += 1;
        self.stats.staleness_points = 0;
        self.done.extend(remaining);
        self.carry = None;
        self.snapshot()
    }
}

/// Section tag of the monitor-state section (`b"MON1"` little-endian).
const CKPT_SECTION_MONITOR: u32 = u32::from_le_bytes(*b"MON1");
/// Section tag of the engine-state section (`b"ENG1"`), present only
/// once the monitor has left warm-up.
const CKPT_SECTION_ENGINE: u32 = u32::from_le_bytes(*b"ENG1");
const CKPT_MONITOR_VERSION: u32 = 1;
const CKPT_ENGINE_VERSION: u32 = 1;

fn corrupt(what: impl Into<String>) -> CheckpointError {
    CheckpointError::Corrupt(what.into())
}

/// Persistence for the monitor (see [`Checkpoint`] for the container
/// format). The checkpoint holds the series plus the fold/queue
/// bookkeeping; FFT spectra, prefix sums, and window statistics are
/// re-derived on load — each is a pure per-entry function of the series
/// (and, on the segmented backend, the checkpointed block-grid layout),
/// so the rebuilt kernel is bit-identical to the evolved original and
/// checkpoints stay `O(series)` small. The segmented rolled-chain row
/// **is** serialized: a restored monitor that reseeded instead of
/// continuing the roll would diverge from the uninterrupted run at the
/// ulp level.
impl Checkpoint for StreamingDiscordMonitor {
    fn save_checkpoint(&self, writer: &mut impl Write) -> Result<(), CheckpointError> {
        let sections = 1 + u32::from(self.mass.is_some());
        let mut out = CheckpointWriter::begin(writer, sections)?;
        let mut f = FieldWriter::new();
        f.usize(self.m);
        f.usize(self.exclusion);
        f.u64(self.seed);
        f.u32(match self.backend {
            MassBackend::Exact => 0,
            MassBackend::Segmented => 1,
        });
        f.u64(self.clock.epochs());
        f.usize(self.clock.offset());
        f.opt_usize(self.clock.retention());
        f.f64_slice(&self.warmup);
        f.f64_slice(&self.fold_profile);
        f.usize_slice(&self.fold_index);
        let pending: Vec<usize> = self.pending.iter().copied().collect();
        f.usize_slice(&pending);
        f.usize_slice(&self.done);
        match &self.carry {
            None => f.bool(false),
            Some((cp, ci)) => {
                f.bool(true);
                f.f64_slice(cp);
                f.usize_slice(ci);
            }
        }
        out.section(CKPT_SECTION_MONITOR, CKPT_MONITOR_VERSION, &f.into_bytes())?;
        let Some(mass) = &self.mass else {
            return Ok(());
        };
        let mut f = FieldWriter::new();
        match mass {
            MassEngine::Exact(mass) => f.f64_slice(mass.series()),
            MassEngine::Segmented(seg) => {
                f.f64_slice(seg.grid_series());
                f.usize(seg.dead_prefix());
                f.usize(seg.block_size());
                f.u64(seg.generation());
                // Only a current-generation rolled row is worth keeping:
                // a stale one would be ignored by the next query on both
                // the original and the restored monitor alike.
                match self.scratch.seg.rolled_row() {
                    Some((g, q, chain, cov)) if g == seg.generation() => {
                        f.bool(true);
                        f.usize(q);
                        f.usize(chain);
                        f.f64_slice(cov);
                    }
                    _ => f.bool(false),
                }
            }
        }
        out.section(CKPT_SECTION_ENGINE, CKPT_ENGINE_VERSION, &f.into_bytes())?;
        Ok(())
    }

    fn load_checkpoint(reader: &mut impl Read) -> Result<Self, CheckpointError> {
        let mut input = CheckpointReader::begin(reader)?;
        let (_, payload) = input.section(CKPT_SECTION_MONITOR, CKPT_MONITOR_VERSION)?;
        let mut f = FieldReader::new(&payload);
        let m = f.usize()?;
        let exclusion = f.usize()?;
        let seed = f.u64()?;
        let backend = match f.u32()? {
            0 => MassBackend::Exact,
            1 => MassBackend::Segmented,
            other => return Err(corrupt(format!("unknown backend tag {other}"))),
        };
        let epochs = f.u64()?;
        let offset = f.usize()?;
        let retention = f.opt_usize()?;
        let warmup = f.f64_vec()?;
        let fold_profile = f.f64_vec()?;
        let fold_index = f.usize_vec()?;
        let pending = f.usize_vec()?;
        let done = f.usize_vec()?;
        let carry = if f.bool()? {
            Some((f.f64_vec()?, f.usize_vec()?))
        } else {
            None
        };
        f.finish()?;
        if m == 0 {
            return Err(corrupt("window m must be positive"));
        }
        if let Some(n) = retention {
            // retain_last rejects n < m, so no saved monitor holds one;
            // honoring it would panic inside the next append's auto-trim.
            if n < m {
                return Err(corrupt(format!("retention {n} below window {m}")));
            }
        }

        let (mass, rolled) = if input.sections_remaining() == 0 {
            // Warm-up phase: no windows yet, all per-window state empty.
            if warmup.len() >= m {
                return Err(corrupt("warm-up buffer holds a full window"));
            }
            if !fold_profile.is_empty()
                || !fold_index.is_empty()
                || !pending.is_empty()
                || !done.is_empty()
                || carry.is_some()
            {
                return Err(corrupt("per-window state present without an engine"));
            }
            (None, None)
        } else {
            let (_, payload) = input.section(CKPT_SECTION_ENGINE, CKPT_ENGINE_VERSION)?;
            let mut f = FieldReader::new(&payload);
            if !warmup.is_empty() {
                return Err(corrupt("warm-up buffer non-empty alongside an engine"));
            }
            let (engine, rolled) = match backend {
                MassBackend::Exact => {
                    let series = f.f64_vec()?;
                    if series.len() < m {
                        return Err(corrupt("series shorter than the window"));
                    }
                    // A fresh build is bit-identical to the evolved
                    // engine after any append/evict schedule (the
                    // kernel's own contract), so the series is the
                    // whole state.
                    (MassEngine::Exact(MassPrecomputed::new(&series, m)), None)
                }
                MassBackend::Segmented => {
                    let grid = f.f64_vec()?;
                    let head = f.usize()?;
                    let block = f.usize()?;
                    let generation = f.u64()?;
                    let rolled = if f.bool()? {
                        Some((generation, f.usize()?, f.usize()?, f.f64_vec()?))
                    } else {
                        None
                    };
                    if !block.is_power_of_two() || block < m {
                        return Err(corrupt(format!("bad block size {block} for window {m}")));
                    }
                    if head >= block {
                        return Err(corrupt(format!("dead prefix {head} not below {block}")));
                    }
                    if head + m > grid.len() {
                        return Err(corrupt("fewer than m live points in the grid"));
                    }
                    (
                        MassEngine::Segmented(SegmentedMass::restore(
                            grid, head, m, block, generation,
                        )),
                        rolled,
                    )
                }
            };
            f.finish()?;
            let count = engine.window_count();
            if fold_profile.len() != count || fold_index.len() != count {
                return Err(corrupt("fold length disagrees with the window count"));
            }
            let in_range = |q: &usize| *q < count;
            if !pending.iter().all(in_range) || !done.iter().all(in_range) {
                return Err(corrupt("query index out of range"));
            }
            if !fold_index.iter().all(|&i| i == usize::MAX || i < count) {
                return Err(corrupt("fold neighbor index out of range"));
            }
            if let Some((cp, ci)) = &carry {
                if cp.len() != count || ci.len() != count {
                    return Err(corrupt("carry length disagrees with the window count"));
                }
                if !ci.iter().all(|&i| i == usize::MAX || i < count) {
                    return Err(corrupt("carry neighbor index out of range"));
                }
            }
            if let Some((_, q, chain, cov)) = &rolled {
                if *q >= count || *chain > MAX_ROLL_CHAIN || cov.len() != count {
                    return Err(corrupt("rolled-chain row inconsistent with the grid"));
                }
            }
            (Some(engine), rolled)
        };

        let mut monitor = Self {
            m,
            exclusion,
            seed,
            clock: StreamClock::with_state(epochs, offset, retention),
            backend,
            warmup,
            mass,
            pending: pending.into(),
            done,
            fold_profile,
            fold_index,
            carry,
            scratch: EngineScratch::default(),
            dp: Vec::new(),
            // Telemetry describes a process, not resumable state: a
            // restored monitor starts counting from zero.
            stats: SessionStats::default(),
        };
        if let Some((generation, q, chain, cov)) = rolled {
            monitor
                .scratch
                .seg
                .set_rolled_row(generation, q, chain, cov);
        }
        Ok(monitor)
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use super::*;
    use crate::stamp::stamp_with_exclusion;

    fn test_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                (t * 0.13).sin() * 1.2 + 0.5 * (t * 0.041).cos() + ((i * 29) % 13) as f64 * 0.06
            })
            .collect()
    }

    #[test]
    fn finished_profile_matches_batch_stamp_bitwise() {
        let series = test_series(240);
        let m = 8;
        let exc = m / 2;
        let reference = stamp_with_exclusion(&series, m, exc);
        for chunk in [1usize, 7, 64, 240] {
            let mut monitor = StreamingDiscordMonitor::with_exclusion(m, exc);
            for part in series.chunks(chunk) {
                monitor.append(part);
            }
            let finished = monitor.finish();
            assert_eq!(finished.profile, reference.profile, "chunk {chunk}");
            assert_eq!(finished.index, reference.index, "chunk {chunk}");
            assert!(monitor.is_current());
        }
    }

    #[test]
    fn interleaved_stepping_still_matches_batch() {
        let series = test_series(200);
        let m = 10;
        let exc = m / 2;
        let reference = stamp_with_exclusion(&series, m, exc);
        for seed in [0u64, 9, 0xFEED] {
            let mut monitor = StreamingDiscordMonitor::with_seed(m, exc, seed);
            for part in series.chunks(23) {
                monitor.append(part);
                monitor.run_for(11); // leave a backlog on purpose
                let _ = monitor.snapshot();
            }
            let finished = monitor.finish();
            assert_eq!(finished.profile, reference.profile, "seed {seed}");
            assert_eq!(finished.index, reference.index, "seed {seed}");
        }
    }

    #[test]
    fn parallel_finish_deterministic_across_thread_counts() {
        let series = test_series(220);
        let m = 9;
        let exc = m / 2;
        let reference = stamp_with_exclusion(&series, m, exc);
        for threads in [1usize, 2, 3, 8] {
            let mut monitor = StreamingDiscordMonitor::with_exclusion(m, exc);
            for part in series.chunks(31) {
                monitor.append(part);
                monitor.run_for(5);
            }
            let finished = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| monitor.finish_parallel());
            assert_eq!(finished.profile, reference.profile, "{threads} threads");
            assert_eq!(finished.index, reference.index, "{threads} threads");
        }
    }

    #[test]
    fn warmup_buffers_until_m_points() {
        let mut monitor = StreamingDiscordMonitor::new(8);
        monitor.append(&[1.0, 2.0, 3.0]);
        assert_eq!(monitor.window_count(), 0);
        assert!(monitor.snapshot().is_empty());
        assert!(!monitor.step());
        assert!(monitor.discords(3).is_empty());
        monitor.append(&test_series(13));
        assert_eq!(monitor.series_len(), 16);
        assert_eq!(monitor.window_count(), 9);
        assert_eq!(monitor.pending(), 9);
    }

    #[test]
    fn snapshot_is_stable_across_an_append() {
        let series = test_series(180);
        let m = 8;
        let mut monitor = StreamingDiscordMonitor::new(m);
        monitor.append(&series[..120]);
        monitor.run_for(40);
        let before = monitor.snapshot();
        monitor.append(&series[120..]);
        let after = monitor.snapshot();
        // Old entries unchanged; new entries start untouched.
        assert_eq!(&after.profile[..before.len()], &before.profile[..]);
        assert_eq!(&after.index[..before.len()], &before.index[..]);
        assert!(after.profile[before.len()..]
            .iter()
            .all(|d| d.is_infinite()));
    }

    #[test]
    fn snapshots_tighten_within_an_epoch() {
        let series = test_series(160);
        let mut monitor = StreamingDiscordMonitor::new(8);
        monitor.append(&series[..100]);
        monitor.run_for(usize::MAX);
        monitor.append(&series[100..]);
        let mut previous = monitor.snapshot();
        let mut was_current = monitor.is_current();
        while monitor.run_for(13) > 0 {
            let current = monitor.snapshot();
            for i in 0..previous.len() {
                // Bitwise monotone while the carry is live; the
                // catch-up transition (stale carry dropped in favor of
                // the exact fold) may move entries by FFT round-off —
                // the one documented departure.
                let slack = if monitor.is_current() && !was_current {
                    1e-9 * (1.0 + previous.profile[i].abs())
                } else {
                    0.0
                };
                assert!(
                    current.profile[i] <= previous.profile[i] + slack,
                    "entry {i} rose: {} -> {}",
                    previous.profile[i],
                    current.profile[i]
                );
            }
            was_current = monitor.is_current();
            previous = current;
        }
        assert!(monitor.is_current());
    }

    #[test]
    fn fresh_queries_run_before_the_backlog() {
        let series = test_series(150);
        let m = 8;
        let mut monitor = StreamingDiscordMonitor::new(m);
        monitor.append(&series[..100]);
        monitor.run_for(usize::MAX);
        assert!(monitor.is_current());
        let old_count = monitor.window_count();
        monitor.append(&series[100..]);
        let fresh = monitor.window_count() - old_count;
        // Processing exactly the fresh queries covers every new window.
        assert_eq!(monitor.run_for(fresh), fresh);
        let snap = monitor.snapshot();
        assert!(
            snap.profile[old_count..].iter().all(|d| d.is_finite()),
            "new windows must be covered after `fresh` steps"
        );
        // The backlog (numerical re-runs) is still pending.
        assert_eq!(monitor.pending(), old_count);
        assert!(!monitor.is_current());
    }

    #[test]
    fn monitor_finds_an_injected_discord_mid_stream() {
        let mut series: Vec<f64> = (0..400).map(|i| (i as f64 * 0.35).sin()).collect();
        for (k, v) in series[300..315].iter_mut().enumerate() {
            *v = 2.5 + (k as f64 * 2.1).sin() * 1.5;
        }
        let m = 20;
        let mut monitor = StreamingDiscordMonitor::new(m);
        monitor.append(&series[..250]);
        monitor.run_for(usize::MAX);
        for chunk in series[250..].chunks(50) {
            monitor.append(chunk);
            monitor.run_for(chunk.len());
        }
        let top = monitor.discords(1);
        assert_eq!(top.len(), 1);
        assert!(
            (285..=315).contains(&top.first().unwrap().start),
            "top discord at {} should cover the corrupted beat",
            top.first().unwrap().start
        );
    }

    #[test]
    fn run_for_duration_respects_zero_budget() {
        let series = test_series(150);
        let mut monitor = StreamingDiscordMonitor::new(8);
        monitor.append(&series);
        assert_eq!(monitor.run_for_duration(Duration::ZERO), 0);
        assert_eq!(monitor.processed(), 0);
    }

    #[test]
    fn seed_changes_order_not_result() {
        let series = test_series(170);
        let m = 7;
        let exc = m / 2;
        let reference = stamp_with_exclusion(&series, m, exc);
        for seed in 0..5u64 {
            let mut monitor = StreamingDiscordMonitor::with_seed(m, exc, seed);
            for part in series.chunks(41) {
                monitor.append(part);
                monitor.run_for(17);
            }
            let finished = monitor.finish();
            assert_eq!(finished.profile, reference.profile, "seed {seed}");
            assert_eq!(finished.index, reference.index, "seed {seed}");
        }
    }

    #[test]
    fn single_append_equals_anytime_stamp() {
        // With one append and no interleaving, the monitor is just
        // anytime STAMP over the batch series.
        let series = test_series(130);
        let m = 6;
        let exc = 3;
        let mut monitor = StreamingDiscordMonitor::with_exclusion(m, exc);
        monitor.append(&series);
        let finished = monitor.finish();
        let reference = stamp_with_exclusion(&series, m, exc);
        assert_eq!(finished.profile, reference.profile);
        assert_eq!(finished.index, reference.index);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        StreamingDiscordMonitor::new(0);
    }

    // ------------------------------------------------------------------
    // Sliding-window eviction: boundary regressions. The property
    // harness in tests/eviction_proptests.rs covers random schedules;
    // these pin the exact edges of the contract.
    // ------------------------------------------------------------------

    #[test]
    fn evict_then_finish_matches_batch_over_suffix() {
        let series = test_series(260);
        let m = 9;
        let exc = m / 2;
        for cut in [1usize, 40, 137] {
            let mut monitor = StreamingDiscordMonitor::with_exclusion(m, exc);
            for part in series.chunks(33) {
                monitor.append(part);
                monitor.run_for(7);
            }
            monitor.evict(cut).unwrap();
            assert_eq!(monitor.stream_offset(), cut);
            let finished = monitor.finish();
            let reference = stamp_with_exclusion(&series[cut..], m, exc);
            assert_eq!(finished.profile, reference.profile, "cut {cut}");
            assert_eq!(finished.index, reference.index, "cut {cut}");
        }
    }

    #[test]
    fn evict_to_exactly_m_points_leaves_one_window() {
        let series = test_series(100);
        let m = 8;
        let mut monitor = StreamingDiscordMonitor::new(m);
        monitor.append(&series);
        monitor.evict(series.len() - m).unwrap();
        assert_eq!(monitor.series_len(), m);
        assert_eq!(monitor.window_count(), 1);
        let finished = monitor.finish();
        let reference = stamp_with_exclusion(&series[series.len() - m..], m, m / 2);
        assert_eq!(finished.profile, reference.profile);
        assert_eq!(finished.index, reference.index);
    }

    #[test]
    fn evict_below_minimum_errors_without_state_change() {
        let series = test_series(60);
        let m = 10;
        let mut monitor = StreamingDiscordMonitor::new(m);
        monitor.append(&series);
        monitor.run_for(usize::MAX);
        let before = monitor.snapshot();
        // A non-empty suffix shorter than m must be rejected…
        assert_eq!(
            monitor.evict(55),
            Err(EvictError::BelowMinimum {
                remaining: 5,
                minimum: m
            })
        );
        // …as must reaching past the stream.
        assert_eq!(
            monitor.evict(61),
            Err(EvictError::PastEnd {
                requested: 61,
                available: 60
            })
        );
        // Atomic rejection: nothing moved.
        assert_eq!(monitor.series_len(), 60);
        assert_eq!(monitor.stream_offset(), 0);
        assert_eq!(monitor.epochs(), 1);
        let after = monitor.snapshot();
        assert_eq!(after.profile, before.profile);
        assert_eq!(after.index, before.index);
    }

    #[test]
    fn evict_everything_then_append_restarts_cleanly() {
        let series = test_series(150);
        let m = 7;
        let exc = m / 2;
        let mut monitor = StreamingDiscordMonitor::with_exclusion(m, exc);
        monitor.append(&series[..90]);
        monitor.run_for(20);
        monitor.evict(90).unwrap();
        assert_eq!(monitor.series_len(), 0);
        assert_eq!(monitor.window_count(), 0);
        assert_eq!(monitor.stream_offset(), 90);
        assert!(monitor.snapshot().is_empty());
        assert!(!monitor.step());
        // A fresh stream begins, warm-up and all.
        monitor.append(&series[90..93]);
        assert_eq!(monitor.window_count(), 0, "back in warm-up");
        monitor.append(&series[93..]);
        let finished = monitor.finish();
        let reference = stamp_with_exclusion(&series[90..], m, exc);
        assert_eq!(finished.profile, reference.profile);
        assert_eq!(finished.index, reference.index);
        assert_eq!(monitor.stream_offset(), 90);
    }

    #[test]
    fn one_point_evictions_mirror_one_point_appends() {
        let series = test_series(90);
        let m = 6;
        let exc = m / 2;
        let mut monitor = StreamingDiscordMonitor::with_exclusion(m, exc);
        monitor.append(&series);
        for step in 1..=20usize {
            monitor.evict(1).unwrap();
            assert_eq!(monitor.stream_offset(), step);
            monitor.run_for(3);
        }
        let finished = monitor.finish();
        let reference = stamp_with_exclusion(&series[20..], m, exc);
        assert_eq!(finished.profile, reference.profile);
        assert_eq!(finished.index, reference.index);
    }

    #[test]
    fn evict_during_warmup_only_full_drain_is_valid() {
        let mut monitor = StreamingDiscordMonitor::new(8);
        monitor.append(&[1.0, 2.0, 3.0]);
        assert_eq!(
            monitor.evict(1),
            Err(EvictError::BelowMinimum {
                remaining: 2,
                minimum: 8
            })
        );
        monitor.evict(3).unwrap();
        assert_eq!(monitor.series_len(), 0);
        assert_eq!(monitor.stream_offset(), 3);
    }

    #[test]
    fn evict_zero_is_a_noop() {
        let series = test_series(80);
        let mut monitor = StreamingDiscordMonitor::new(8);
        monitor.append(&series);
        monitor.run_for(10);
        let epochs = monitor.epochs();
        monitor.evict(0).unwrap();
        assert_eq!(monitor.epochs(), epochs);
        assert_eq!(monitor.processed(), 10);
    }

    #[test]
    fn retain_last_policy_trims_on_every_append() {
        let series = test_series(400);
        let m = 8;
        let exc = m / 2;
        let mut monitor = StreamingDiscordMonitor::with_exclusion(m, exc);
        assert_eq!(monitor.retain_last(100), Ok(0));
        assert_eq!(monitor.retention(), Some(100));
        for part in series.chunks(30) {
            monitor.append(part);
            assert!(monitor.series_len() <= 100);
            monitor.run_for(11);
        }
        assert_eq!(monitor.series_len(), 100);
        assert_eq!(monitor.stream_offset(), 300);
        let finished = monitor.finish();
        let reference = stamp_with_exclusion(&series[300..], m, exc);
        assert_eq!(finished.profile, reference.profile);
        assert_eq!(finished.index, reference.index);
    }

    #[test]
    fn retain_last_below_m_is_rejected() {
        let mut monitor = StreamingDiscordMonitor::new(16);
        assert_eq!(
            monitor.retain_last(15),
            Err(EvictError::BelowMinimum {
                remaining: 15,
                minimum: 16
            })
        );
        assert_eq!(monitor.retention(), None);
    }

    // ------------------------------------------------------------------
    // Segmented backend: the toleranced side of the versioned parity
    // contract. The property harness in tests/segmented_proptests.rs
    // covers random schedules; these pin the structural behavior.
    // ------------------------------------------------------------------

    #[test]
    fn segmented_finish_within_tolerance_across_appends_and_evicts() {
        let series = test_series(420);
        let m = 9;
        let exc = m / 2;
        let mut fast = StreamingDiscordMonitor::with_backend(
            m,
            exc,
            DEFAULT_MONITOR_SEED,
            MassBackend::Segmented,
        );
        assert_eq!(fast.backend(), MassBackend::Segmented);
        for part in series.chunks(37) {
            fast.append(part);
            fast.run_for(12); // leave a backlog on purpose
        }
        fast.evict(50).unwrap();
        for part in [&series[..23], &series[100..140]] {
            fast.append(part);
            fast.run_for(9);
        }
        let finished = fast.finish();
        assert!(fast.is_current());
        // Shadow: an Exact monitor fed the identical schedule.
        let mut oracle = StreamingDiscordMonitor::with_exclusion(m, exc);
        for part in series.chunks(37) {
            oracle.append(part);
        }
        oracle.evict(50).unwrap();
        for part in [&series[..23], &series[100..140]] {
            oracle.append(part);
        }
        let reference = oracle.finish();
        assert_eq!(finished.len(), reference.len());
        for i in 0..finished.len() {
            let (a, b) = (finished.profile[i], reference.profile[i]);
            // ≤1e-9 in distance or squared distance: d = √(2m(1−corr))
            // amplifies corr rounding unboundedly as d → 0 (an exact
            // re-appended chunk creates true-zero pairs here), but d²
            // is linear in corr, so near-zero entries compare cleanly
            // there. Either bound implies the profiles agree to within
            // kernel round-off.
            assert!(
                (a - b).abs() <= 1e-9 || (a * a - b * b).abs() <= 1e-9,
                "i={i}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn segmented_append_enqueues_only_fresh_queries() {
        let series = test_series(300);
        let m = 8;
        let mut monitor = StreamingDiscordMonitor::with_backend(
            m,
            m / 2,
            DEFAULT_MONITOR_SEED,
            MassBackend::Segmented,
        );
        monitor.append(&series[..200]);
        monitor.run_for(usize::MAX);
        assert!(monitor.is_current());
        monitor.append(&series[200..]);
        // No catch-up backlog: exactly the fresh windows are pending —
        // the structural source of the backend's ingest throughput.
        assert_eq!(monitor.pending(), 100);
        assert_eq!(monitor.run_for(usize::MAX), 100);
        assert!(monitor.is_current());
        // And the fold kept the pre-append evidence: every old entry is
        // still finite and the profile is complete.
        let snap = monitor.snapshot();
        assert!(snap.profile.iter().all(|d| d.is_finite()));
    }

    #[test]
    fn segmented_finish_parallel_falls_back_to_sequential() {
        let series = test_series(240);
        let m = 8;
        let exc = m / 2;
        let mut a = StreamingDiscordMonitor::with_backend(
            m,
            exc,
            DEFAULT_MONITOR_SEED,
            MassBackend::Segmented,
        );
        let mut b = StreamingDiscordMonitor::with_backend(
            m,
            exc,
            DEFAULT_MONITOR_SEED,
            MassBackend::Segmented,
        );
        a.append(&series);
        b.append(&series);
        let par = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| a.finish_parallel());
        let seq = b.finish();
        // Identical (not merely toleranced): same sequential rolled path.
        assert_eq!(par.profile, seq.profile);
        assert_eq!(par.index, seq.index);
    }

    #[test]
    fn segmented_block_store_stays_bounded_under_retention() {
        let m = 16usize;
        let retention = 600usize;
        let chunk = 64usize;
        let mut monitor = StreamingDiscordMonitor::with_backend(
            m,
            m / 2,
            DEFAULT_MONITOR_SEED,
            MassBackend::Segmented,
        );
        monitor.retain_last(retention).unwrap();
        assert!(monitor.block_store().is_none(), "no windows yet");
        let mut fed = 0usize;
        let mut transform_sizes = Vec::new();
        while fed < 40_000 {
            let part: Vec<f64> = (0..chunk)
                .map(|j| ((fed + j) as f64 * 0.17).sin() * 1.5)
                .collect();
            monitor.append(&part);
            fed += chunk;
            monitor.run_for(8);
            let (blocks, block, spectra) = monitor.block_store().expect("segmented backend");
            // Blocks cover live points + dead prefix (< B) + chunk slack.
            let max_blocks = (retention + chunk + block).div_ceil(block) + 1;
            assert!(blocks <= max_blocks, "{blocks} blocks exceed {max_blocks}");
            assert!(
                spectra <= 2 * max_blocks * (block + 1),
                "spectra capacity {spectra} exceeds O(n + chunk)"
            );
            assert!(
                monitor.series_capacity() <= 2 * (retention + chunk + block),
                "series capacity {} unbounded",
                monitor.series_capacity()
            );
            transform_sizes.push(monitor.padded_size());
        }
        // The per-query transform size never grew with stream length.
        assert!(transform_sizes.windows(2).all(|w| w[0] == w[1]));
        // Exact monitor under the same policy: padded size tracks the
        // retention window (the contrast the accessor documents).
        assert_eq!(monitor.stream_offset(), fed - retention);
    }

    #[test]
    fn exact_backend_is_the_default_and_bitwise_unchanged() {
        let series = test_series(150);
        let m = 8;
        let monitor = StreamingDiscordMonitor::new(m);
        assert_eq!(monitor.backend(), MassBackend::Exact);
        // with_backend(Exact) is the same monitor with_seed builds.
        let mut a = StreamingDiscordMonitor::with_backend(
            m,
            m / 2,
            DEFAULT_MONITOR_SEED,
            MassBackend::Exact,
        );
        let mut b = StreamingDiscordMonitor::new(m);
        for part in series.chunks(33) {
            a.append(part);
            b.append(part);
        }
        let fa = a.finish();
        let fb = b.finish();
        assert_eq!(fa.profile, fb.profile);
        assert_eq!(fa.index, fb.index);
    }

    // ------------------------------------------------------------------
    // Checkpoint/restore: pinned mid-schedule round trips. The property
    // harness in tests/checkpoint_proptests.rs injects save/restore at
    // every prefix of random schedules; these pin the structural edges.
    // ------------------------------------------------------------------

    #[test]
    fn checkpoint_round_trip_resumes_bit_identically() {
        let series = test_series(300);
        let m = 9;
        let exc = m / 2;
        for backend in [MassBackend::Exact, MassBackend::Segmented] {
            let mut live = StreamingDiscordMonitor::with_backend(m, exc, 7, backend);
            live.append(&series[..180]);
            live.run_for(55); // mid-epoch: fold, pending, and (exact) carry all populated
            live.append(&series[180..240]);
            live.run_for(13);
            live.evict(40).unwrap();
            live.run_for(21);
            live.append(&series[240..]);
            live.run_for(17);

            let bytes = live.checkpoint_bytes().unwrap();
            let mut restored = StreamingDiscordMonitor::from_checkpoint_bytes(&bytes).unwrap();
            assert_eq!(restored.backend(), backend);
            assert_eq!(restored.stream_offset(), live.stream_offset());
            assert_eq!(restored.epochs(), live.epochs());
            assert_eq!(restored.pending(), live.pending());
            let (a, b) = (restored.snapshot(), live.snapshot());
            assert_eq!(a.profile, b.profile, "{backend:?}");
            assert_eq!(a.index, b.index, "{backend:?}");

            // Replay the identical remainder on both: every intermediate
            // snapshot and the finish must stay bitwise in lockstep.
            for monitor in [&mut live, &mut restored] {
                monitor.run_for(29);
                monitor.append(&series[..50]);
                monitor.run_for(11);
                monitor.evict(23).unwrap();
            }
            let (a, b) = (restored.snapshot(), live.snapshot());
            assert_eq!(a.profile, b.profile, "{backend:?}");
            let (fa, fb) = (restored.finish(), live.finish());
            assert_eq!(fa.profile, fb.profile, "{backend:?}");
            assert_eq!(fa.index, fb.index, "{backend:?}");
        }
    }

    #[test]
    fn checkpoint_preserves_the_segmented_rolled_chain() {
        // Ascending query order keeps the rolled covariance row hot; a
        // checkpoint taken mid-chain must hand the restored monitor the
        // same row, or its next query reseeds and drifts by an ulp.
        let series = test_series(400);
        let m = 12;
        let mut live = StreamingDiscordMonitor::with_backend(
            m,
            m / 2,
            DEFAULT_MONITOR_SEED,
            MassBackend::Segmented,
        );
        live.append(&series);
        live.run_for(150); // mid-chain
        let mut restored =
            StreamingDiscordMonitor::from_checkpoint_bytes(&live.checkpoint_bytes().unwrap())
                .unwrap();
        let (fa, fb) = (restored.finish(), live.finish());
        assert_eq!(fa.profile, fb.profile);
        assert_eq!(fa.index, fb.index);
    }

    #[test]
    fn checkpoint_during_warmup_round_trips() {
        let mut live = StreamingDiscordMonitor::new(8);
        live.append(&[1.0, 2.0, 3.0]);
        let mut restored =
            StreamingDiscordMonitor::from_checkpoint_bytes(&live.checkpoint_bytes().unwrap())
                .unwrap();
        assert_eq!(restored.series_len(), 3);
        assert_eq!(restored.window_count(), 0);
        let tail = test_series(120);
        live.append(&tail);
        restored.append(&tail);
        let (fa, fb) = (restored.finish(), live.finish());
        assert_eq!(fa.profile, fb.profile);
        assert_eq!(fa.index, fb.index);
    }

    #[test]
    fn checkpoint_round_trips_retention_policy() {
        let series = test_series(400);
        let m = 8;
        let mut live = StreamingDiscordMonitor::new(m);
        live.retain_last(120).unwrap();
        live.append(&series[..300]);
        live.run_for(31);
        let mut restored =
            StreamingDiscordMonitor::from_checkpoint_bytes(&live.checkpoint_bytes().unwrap())
                .unwrap();
        assert_eq!(restored.retention(), Some(120));
        // The policy keeps trimming on the restored side.
        live.append(&series[300..]);
        restored.append(&series[300..]);
        assert_eq!(restored.series_len(), 120);
        assert_eq!(restored.stream_offset(), live.stream_offset());
        let (fa, fb) = (restored.finish(), live.finish());
        assert_eq!(fa.profile, fb.profile);
        assert_eq!(fa.index, fb.index);
    }

    #[test]
    fn checkpoint_rejects_malformed_input_with_typed_errors() {
        let series = test_series(150);
        let mut monitor = StreamingDiscordMonitor::new(8);
        monitor.append(&series);
        monitor.run_for(40);
        let bytes = monitor.checkpoint_bytes().unwrap();

        // Wrong magic.
        let mut foreign = bytes.clone();
        foreign[0] ^= 0xFF;
        assert!(matches!(
            StreamingDiscordMonitor::from_checkpoint_bytes(&foreign),
            Err(CheckpointError::BadMagic)
        ));
        // Truncation anywhere must surface as an error, never a panic.
        for cut in [0, 7, 8, 15, 16, 40, bytes.len() - 1] {
            assert!(
                StreamingDiscordMonitor::from_checkpoint_bytes(&bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
        // A flipped payload byte fails the section checksum.
        let mut flipped = bytes.clone();
        let target = flipped.len() / 2;
        flipped[target] ^= 0x10;
        assert!(StreamingDiscordMonitor::from_checkpoint_bytes(&flipped).is_err());
    }

    #[test]
    fn snapshot_after_evict_stays_inside_the_live_window() {
        let series = test_series(200);
        let m = 8;
        let mut monitor = StreamingDiscordMonitor::new(m);
        monitor.append(&series);
        monitor.run_for(usize::MAX);
        monitor.evict(60).unwrap();
        let windows = monitor.window_count();
        // All evidence was discarded (stale entries could cite retired
        // neighbors); re-tightening stays in local coordinates.
        let snap = monitor.snapshot();
        assert!(snap.profile.iter().all(|d| d.is_infinite()));
        monitor.run_for(25);
        let snap = monitor.snapshot();
        for &idx in &snap.index {
            assert!(idx == usize::MAX || idx < windows, "index {idx} escaped");
        }
        for d in monitor.discords(3) {
            assert!(d.start < windows);
        }
    }
}
