//! # egi-discord — distance-based anomaly detection baselines
//!
//! The paper compares ensemble grammar induction against *time series
//! discords*: the subsequences with the largest one-nearest-neighbor
//! distance. This crate implements that whole family from scratch:
//!
//! * [`fft`] — an in-house radix-2 FFT (no external DSP crates) with
//!   cached plans ([`fft::FftPlan`]: precomputed twiddle factors +
//!   bit-reversal tables) and real-input packing ([`fft::RealFftPlan`]:
//!   a length-`n` real transform as a length-`n/2` complex one).
//! * [`dist`] — z-normalized Euclidean distances and the dot-product
//!   identity `d² = 2m(1 − (QT − m·μ_q·μ_t)/(m·σ_q·σ_t))`.
//! * [`mass`] — MASS: one query's distance profile in `O(N log N)`, and
//!   [`mass::MassPrecomputed`] — the shared-spectrum fast path that
//!   transforms the series once and answers every query against the
//!   cached spectrum.
//! * [`profile`] — the matrix profile type plus discord extraction.
//! * [`brute`] — `O(N²·m)` reference matrix profile (test oracle).
//! * [`mod@stomp`] — STOMP \[23\]: `O(N²)` matrix profile with incremental dot
//!   products, traversed by diagonals and parallelized with rayon
//!   (bit-deterministic for every thread count); the implementation the
//!   paper benchmarks against (Fig. 8).
//! * [`mod@stamp`] — STAMP \[21\]: MASS-per-query matrix profile, running on
//!   the shared spectrum.
//! * [`anytime`] — [`AnytimeStamp`]: STAMP's anytime property as a
//!   first-class API — seeded random query order, deadline-style
//!   stepping with monotonically converging snapshots, and a
//!   rayon-parallel batch mode; finished profiles are bit-identical to
//!   sequential [`stamp()`](stamp::stamp) for every seed, permutation,
//!   and worker count.
//! * [`hotsax`] — the original HOTSAX discord search \[9\] with SAX-bucket
//!   outer-loop ordering and early abandoning.
//! * [`detector`] — [`DiscordDetector`]: the "Discord" baseline of the
//!   evaluation (top-k non-overlapping discords via STOMP).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod anytime;
pub mod brute;
pub mod detector;
pub mod dist;
pub mod fft;
pub mod hotsax;
pub mod mass;
pub mod profile;
pub mod stamp;
pub mod stomp;

pub use anytime::{stamp_parallel, AnytimeStamp};
pub use detector::{DiscordConfig, DiscordDetector};
pub use fft::{FftPlan, RealFftPlan};
pub use hotsax::{hotsax_discord, hotsax_discords};
pub use mass::{MassPrecomputed, MassScratch};
pub use profile::{Discord, MatrixProfile};
pub use stamp::stamp;
pub use stomp::stomp;
