//! # egi-discord — distance-based anomaly detection baselines
//!
//! The paper compares ensemble grammar induction against *time series
//! discords*: the subsequences with the largest one-nearest-neighbor
//! distance. This crate implements that whole family from scratch:
//!
//! * [`fft`] — an in-house radix-2 FFT (no external DSP crates), used by
//!   the MASS distance-profile algorithm.
//! * [`dist`] — z-normalized Euclidean distances and the dot-product
//!   identity `d² = 2m(1 − (QT − m·μ_q·μ_t)/(m·σ_q·σ_t))`.
//! * [`mass`] — MASS: one query's distance profile in `O(N log N)`.
//! * [`profile`] — the matrix profile type plus discord extraction.
//! * [`brute`] — `O(N²·m)` reference matrix profile (test oracle).
//! * [`mod@stomp`] — STOMP \[23\]: `O(N²)` matrix profile with incremental dot
//!   products; the implementation the paper benchmarks against (Fig. 8).
//! * [`mod@stamp`] — STAMP \[21\]: MASS-per-query matrix profile.
//! * [`hotsax`] — the original HOTSAX discord search \[9\] with SAX-bucket
//!   outer-loop ordering and early abandoning.
//! * [`detector`] — [`DiscordDetector`]: the "Discord" baseline of the
//!   evaluation (top-k non-overlapping discords via STOMP).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod brute;
pub mod detector;
pub mod dist;
pub mod fft;
pub mod hotsax;
pub mod mass;
pub mod profile;
pub mod stamp;
pub mod stomp;

pub use detector::{DiscordConfig, DiscordDetector};
pub use hotsax::{hotsax_discord, hotsax_discords};
pub use profile::{Discord, MatrixProfile};
pub use stamp::stamp;
pub use stomp::stomp;
