//! # egi-discord — distance-based anomaly detection baselines
//!
//! The paper compares ensemble grammar induction against *time series
//! discords*: the subsequences with the largest one-nearest-neighbor
//! distance. This crate implements that whole family from scratch:
//!
//! * [`fft`] — an in-house radix-2 FFT (no external DSP crates) with
//!   cached plans ([`fft::FftPlan`]: precomputed twiddle factors +
//!   bit-reversal tables) and real-input packing ([`fft::RealFftPlan`]:
//!   a length-`n` real transform as a length-`n/2` complex one).
//! * [`dist`] — z-normalized Euclidean distances and the dot-product
//!   identity `d² = 2m(1 − (QT − m·μ_q·μ_t)/(m·σ_q·σ_t))`.
//! * [`mass`] — MASS: one query's distance profile in `O(N log N)`, and
//!   [`mass::MassPrecomputed`] — the shared-spectrum fast path that
//!   transforms the series once and answers every query against the
//!   cached spectrum.
//! * [`mass_seg`] — [`SegmentedMass`]: the segmented MASS backend —
//!   fixed-size block spectra (overlap-save convolution) for `O(chunk)`
//!   append/evict plus an MPX-style rolled refresh, selected via
//!   [`MassBackend`] under the crate's versioned parity contract
//!   (`Exact` = bit-identical oracle, `Segmented` = ≤1e-9 toleranced
//!   fast path).
//! * [`profile`] — the matrix profile type plus discord extraction.
//! * [`brute`] — `O(N²·m)` reference matrix profile (test oracle).
//! * [`mod@stomp`] — STOMP \[23\]: `O(N²)` matrix profile with incremental dot
//!   products, traversed by diagonals and parallelized with rayon
//!   (bit-deterministic for every thread count); the implementation the
//!   paper benchmarks against (Fig. 8).
//! * [`mod@stamp`] — STAMP \[21\]: MASS-per-query matrix profile, running on
//!   the shared spectrum.
//! * [`anytime`] — [`AnytimeStamp`]: STAMP's anytime property as a
//!   first-class API — seeded random query order, deadline-style
//!   stepping (query budgets, wall-clock [`anytime::Deadline`]s) with
//!   monotonically converging snapshots, and a rayon-parallel batch
//!   mode; finished profiles are bit-identical to sequential
//!   [`stamp()`](stamp::stamp) for every seed, permutation, and worker
//!   count.
//! * [`streaming`] — [`StreamingDiscordMonitor`]: online
//!   (append-to-series) discord monitoring — ingest points, refresh the
//!   profile under a hard latency budget, answer "best discords so
//!   far"; finished profiles are bit-identical to batch STAMP for every
//!   append schedule.
//! * [`hotsax`] — the original HOTSAX discord search \[9\] with SAX-bucket
//!   outer-loop ordering and early abandoning.
//! * [`detector`] — [`DiscordDetector`]: the "Discord" baseline of the
//!   evaluation (top-k non-overlapping discords via STOMP).
//!
//! # The `(distance, index)` tie-break contract
//!
//! Every profile fold in this crate — STOMP's diagonal merge, STAMP's
//! per-query fold, the anytime/parallel partial-profile merges, the
//! streaming monitor's carry-over — goes through one rule,
//! [`profile::improves`]: candidate `(d, idx)` wins iff it is strictly
//! smaller under the total order *distance first, neighbor index
//! second*. Min-folding under a total order is commutative and
//! associative, so **any** processing order (row sweeps, diagonal
//! chunks, random permutations, per-worker partials, append schedules)
//! produces bit-identical profile *and index* vectors, including on
//! exact distance ties.
//!
//! # The anytime-convergence guarantee
//!
//! Partial profiles from [`AnytimeStamp`] and
//! [`StreamingDiscordMonitor`] tighten pointwise-monotonically as
//! queries are processed and are always an upper bound on the batch
//! profile; run to completion, they land bit-exactly on
//! [`stamp()`](stamp::stamp)'s output. See [`anytime`] and
//! [`streaming`] for the fine print (and the one FFT-round-off caveat
//! at a streaming catch-up transition).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod anytime;
pub mod brute;
pub mod detector;
pub mod dist;
pub mod fft;
pub mod hotsax;
pub mod mass;
pub mod mass_seg;
pub mod profile;
pub mod session;
pub mod stamp;
pub mod stomp;
pub mod streaming;

pub use anytime::{stamp_parallel, AnytimeStamp, Deadline};
pub use detector::{DiscordConfig, DiscordDetector};
pub use fft::{FftPlan, RealFftPlan};
pub use hotsax::{hotsax_discord, hotsax_discords};
pub use mass::{MassPrecomputed, MassScratch};
pub use mass_seg::{MassBackend, SegmentedMass};
pub use profile::{Discord, MatrixProfile};
pub use stamp::{stamp, stamp_with_backend};
pub use stomp::stomp;
pub use streaming::StreamingDiscordMonitor;
