//! Anytime and parallel STAMP on the shared-spectrum MASS path.
//!
//! STAMP's defining property — the reason it survives next to the
//! asymptotically faster STOMP — is that it is an *anytime* algorithm:
//! every processed query tightens the matrix profile monotonically, so
//! the computation can be interrupted at any point and still hand back a
//! valid over-approximation. [`AnytimeStamp`] makes that property a
//! first-class API instead of an implementation footnote:
//!
//! * queries are processed in a **seeded pseudo-random order**, so the
//!   partial profile converges uniformly across the series instead of
//!   front-to-back (the classic STAMP recommendation);
//! * [`AnytimeStamp::run_for`] / [`AnytimeStamp::step`] give
//!   deadline-style stepping — process a budget of queries, look at the
//!   [`AnytimeStamp::snapshot`], decide whether to keep going;
//! * [`AnytimeStamp::run_until`] accepts a wall-clock [`Deadline`]
//!   (an [`Instant`](std::time::Instant), a [`Duration`] budget, or a
//!   query cap): the
//!   clock is checked **before** each query, so a deadline is never
//!   overshot by more than one query's work;
//! * [`AnytimeStamp::finish_parallel`] fans the remaining queries out
//!   across rayon workers, each folding into a thread-local partial
//!   profile, merged under the shared `(distance, index)`
//!   lexicographic rule.
//!
//! # Determinism and convergence guarantees
//!
//! The profile fold ([`mod@crate::stamp`]'s `update_from_profile`) is a
//! min-fold under the total order *(distance, neighbor index)* — see
//! [`improves`](crate::profile::improves). Min-folds under a total
//! order are commutative and
//! associative, so the finished profile **and index vector** are
//! bit-identical to sequential [`stamp()`](crate::stamp::stamp) for
//! *every* seed, every query permutation, every interleaving of `step` /
//! `run_for` / `finish_parallel`, and every rayon worker count (pinned
//! by the property tests). Partial snapshots are pointwise
//! non-increasing in the number of processed queries, and after `k`
//! queries every snapshot entry `i` already accounts for all admissible
//! pairs involving any processed query — the partial profile is always
//! an upper bound on the final one.
//!
//! Per-query cost rides on [`MassPrecomputed`] (two half-size real
//! transforms against the cached series spectrum), which is what makes
//! an anytime loop cheap enough to be useful — and the entry point for
//! online discord monitoring later.

use std::time::Duration;

use rayon::prelude::*;

use crate::mass::{MassPrecomputed, MassScratch};
use crate::mass_seg::{EngineScratch, MassBackend, MassEngine};
use crate::profile::{merge_min_into, MatrixProfile};
use crate::stamp::update_from_profile;
use crate::stomp::default_exclusion;

/// Seed used by [`AnytimeStamp::new`] when the caller does not pick one.
pub const DEFAULT_ORDER_SEED: u64 = 0x57A4_9A17;

/// The shared stopping condition for budgeted refresh loops, hoisted
/// into the substrate crate (PR 4) so both streaming subsystems — this
/// crate's discord monitor and `egi-core`'s streaming ensemble detector
/// — speak one deadline type. Re-exported here so existing
/// `egi_discord::anytime::Deadline` users keep compiling unchanged.
///
/// For [`AnytimeStamp`] and the streaming monitor, one "unit of work"
/// is one MASS query: the condition is checked before each query, so a
/// wall-clock deadline is overshot by at most one query's work.
pub use egi_tskit::deadline::Deadline;

/// Deterministic pseudo-random permutation of `0..n` (SplitMix64-keyed
/// Fisher–Yates).
///
/// Used for the anytime query order and for HOTSAX's inner-loop visit
/// order, where the literature prescribes "random" but reproducibility
/// demands a seeded generator.
pub fn pseudo_random_order(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
    let mut next = || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// An interruptible STAMP run: a converging matrix profile that can be
/// stepped, snapshotted, and finished — sequentially or in parallel.
///
/// See the [module docs](self) for the determinism and convergence
/// contract.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use egi_discord::anytime::{AnytimeStamp, Deadline};
///
/// let series: Vec<f64> = (0..200).map(|i| (i as f64 * 0.2).sin()).collect();
/// let mut driver = AnytimeStamp::new(&series, 16);
///
/// // Spend at most 2 ms (or 50 queries) tightening the profile…
/// driver.run_until(Deadline::after(Duration::from_millis(2)).with_query_cap(50));
/// let partial = driver.snapshot(); // valid upper bound at any point
///
/// // …then run to completion: bit-identical to batch `stamp()`.
/// let finished = driver.finish();
/// assert_eq!(finished.profile, egi_discord::stamp(&series, 16).profile);
/// assert!(partial.profile.iter().zip(&finished.profile).all(|(p, f)| p >= f));
/// ```
#[derive(Debug, Clone)]
pub struct AnytimeStamp {
    mass: MassEngine,
    exclusion: usize,
    order: Vec<usize>,
    next: usize,
    profile: Vec<f64>,
    index: Vec<usize>,
    scratch: EngineScratch,
    dp: Vec<f64>,
}

impl AnytimeStamp {
    /// Builds a driver with the default `m/2` exclusion zone and
    /// [`DEFAULT_ORDER_SEED`].
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `m > series.len()`.
    pub fn new(series: &[f64], m: usize) -> Self {
        Self::with_seed(series, m, default_exclusion(m), DEFAULT_ORDER_SEED)
    }

    /// Builds a driver with an explicit exclusion half-width.
    pub fn with_exclusion(series: &[f64], m: usize, exclusion: usize) -> Self {
        Self::with_seed(series, m, exclusion, DEFAULT_ORDER_SEED)
    }

    /// Builds a driver with an explicit exclusion half-width and query
    /// order seed. The seed affects only the *order* of convergence,
    /// never the finished profile.
    pub fn with_seed(series: &[f64], m: usize, exclusion: usize, seed: u64) -> Self {
        Self::from_mass(MassPrecomputed::new(series, m), exclusion, seed)
    }

    /// Builds a driver on an explicit [`MassBackend`] — the versioned
    /// parity contract's selection point (see [`crate::mass_seg`]).
    /// `Exact` matches [`AnytimeStamp::with_seed`]; `Segmented` runs on
    /// the block-transform kernel with queries in **ascending** order
    /// (each rolls from its predecessor's covariance row — the seed is
    /// ignored), so the finished profile is within ≤1e-9 of batch
    /// [`stamp()`](crate::stamp::stamp) rather than bit-identical, and
    /// partial snapshots converge front-to-back instead of uniformly.
    pub fn with_backend(
        series: &[f64],
        m: usize,
        exclusion: usize,
        seed: u64,
        backend: MassBackend,
    ) -> Self {
        Self::from_engine(MassEngine::new(series, m, backend), exclusion, seed)
    }

    /// Builds a driver on an already-constructed [`MassPrecomputed`]
    /// (reuses the series spectrum — the expensive part).
    pub fn from_mass(mass: MassPrecomputed, exclusion: usize, seed: u64) -> Self {
        Self::from_engine(MassEngine::Exact(mass), exclusion, seed)
    }

    fn from_engine(mass: MassEngine, exclusion: usize, seed: u64) -> Self {
        let count = mass.window_count();
        let order = match mass.backend() {
            MassBackend::Exact => pseudo_random_order(count, seed),
            MassBackend::Segmented => (0..count).collect(),
        };
        Self {
            mass,
            exclusion,
            order,
            next: 0,
            profile: vec![f64::INFINITY; count],
            index: vec![usize::MAX; count],
            scratch: EngineScratch::default(),
            dp: Vec::new(),
        }
    }

    /// Window length `m`.
    pub fn m(&self) -> usize {
        self.mass.m()
    }

    /// Which MASS kernel backs this driver.
    pub fn backend(&self) -> MassBackend {
        self.mass.backend()
    }

    /// Exclusion half-width.
    pub fn exclusion(&self) -> usize {
        self.exclusion
    }

    /// Number of sliding windows (= total queries = profile length).
    pub fn window_count(&self) -> usize {
        self.mass.window_count()
    }

    /// Queries processed so far.
    pub fn processed(&self) -> usize {
        self.next
    }

    /// Queries still to process.
    pub fn remaining(&self) -> usize {
        self.order.len() - self.next
    }

    /// `true` once every query has been folded in.
    pub fn is_done(&self) -> bool {
        self.next == self.order.len()
    }

    /// Processes the next query in the seeded order. Returns `false`
    /// when all queries are already done.
    pub fn step(&mut self) -> bool {
        if self.is_done() {
            return false;
        }
        let q = self.order[self.next];
        self.mass
            .distance_profile_into(q, &mut self.scratch, &mut self.dp);
        update_from_profile(
            q,
            &self.dp,
            self.exclusion,
            &mut self.profile,
            &mut self.index,
        );
        self.next += 1;
        true
    }

    /// Processes up to `n` further queries; returns how many actually
    /// ran (less than `n` only when the run completed).
    pub fn run_for(&mut self, n: usize) -> usize {
        self.run_until(Deadline::queries(n))
    }

    /// Processes queries until `deadline` expires or the run completes;
    /// returns how many ran.
    ///
    /// The deadline is checked **before** each query, so a wall-clock
    /// deadline is overshot by at most one query's work (one pair of
    /// half-size real transforms plus the fold) and an already-expired
    /// deadline runs zero queries — the regression tests pin both.
    pub fn run_until(&mut self, deadline: Deadline) -> usize {
        let mut ran = 0;
        while !deadline.expired(ran) && self.step() {
            ran += 1;
        }
        ran
    }

    /// Processes queries for (at most) `budget` of wall-clock time —
    /// [`AnytimeStamp::run_until`] with [`Deadline::after`].
    pub fn run_for_duration(&mut self, budget: Duration) -> usize {
        self.run_until(Deadline::after(budget))
    }

    /// The current partial matrix profile. Entries not yet reached by
    /// any processed query are `+∞` / `usize::MAX`; every entry is an
    /// upper bound on (and converges monotonically to) the final value.
    pub fn snapshot(&self) -> MatrixProfile {
        MatrixProfile {
            m: self.m(),
            exclusion: self.exclusion,
            profile: self.profile.clone(),
            index: self.index.clone(),
        }
    }

    /// Runs all remaining queries sequentially and returns the finished
    /// profile — bit-identical to [`stamp()`](crate::stamp::stamp) with
    /// the same exclusion.
    pub fn finish(&mut self) -> MatrixProfile {
        while self.step() {}
        self.snapshot()
    }

    /// Runs all remaining queries on rayon workers and returns the
    /// finished profile.
    ///
    /// Remaining queries are split into per-worker chunks; each worker
    /// folds its chunk into a thread-local partial profile with its own
    /// [`MassScratch`], and the partials merge under
    /// [`merge_min_into`] —
    /// commutative and associative, hence bit-identical to the
    /// sequential result for every worker count and chunking (pinned by
    /// the property tests). The worker count follows rayon's current
    /// configuration, as in [`mod@crate::stomp`].
    pub fn finish_parallel(&mut self) -> MatrixProfile {
        let remaining = &self.order[self.next..];
        let threads = rayon::current_num_threads();
        if threads <= 1 || remaining.len() <= 1 {
            return self.finish();
        }
        let MassEngine::Exact(mass) = &self.mass else {
            // Segmented queries roll sequentially from their
            // predecessor's covariance row; fanning them out would
            // force an FFT reseed per worker chunk and lose the point.
            return self.finish();
        };
        let count = mass.window_count();
        let chunk_len = remaining.len().div_ceil(threads);
        let chunks: Vec<Vec<usize>> = remaining.chunks(chunk_len).map(<[usize]>::to_vec).collect();
        let exclusion = self.exclusion;
        let partials: Vec<(Vec<f64>, Vec<usize>)> = chunks
            .into_par_iter()
            .map(|chunk| {
                let mut scratch = MassScratch::default();
                let mut dp = Vec::new();
                let mut profile = vec![f64::INFINITY; count];
                let mut index = vec![usize::MAX; count];
                for q in chunk {
                    mass.distance_profile_into(q, &mut scratch, &mut dp);
                    update_from_profile(q, &dp, exclusion, &mut profile, &mut index);
                }
                (profile, index)
            })
            .collect();
        for (local_profile, local_index) in partials {
            merge_min_into(
                &mut self.profile,
                &mut self.index,
                &local_profile,
                &local_index,
            );
        }
        self.next = self.order.len();
        self.snapshot()
    }
}

/// Parallel STAMP: the full matrix profile with queries fanned out
/// across rayon workers — bit-identical to [`stamp_with_exclusion`]
/// (and therefore deterministic for every worker count).
///
/// [`stamp_with_exclusion`]: crate::stamp::stamp_with_exclusion
pub fn stamp_parallel_with_exclusion(series: &[f64], m: usize, exclusion: usize) -> MatrixProfile {
    AnytimeStamp::with_exclusion(series, m, exclusion).finish_parallel()
}

/// Parallel STAMP with the default `m/2` exclusion zone.
pub fn stamp_parallel(series: &[f64], m: usize) -> MatrixProfile {
    stamp_parallel_with_exclusion(series, m, default_exclusion(m))
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    use super::*;
    use crate::stamp::stamp_with_exclusion;

    fn test_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                (t * 0.17).sin() * 1.3 + 0.4 * (t * 0.05).cos() + ((i * 53) % 11) as f64 * 0.07
            })
            .collect()
    }

    #[test]
    fn pseudo_random_order_is_a_permutation() {
        let order = pseudo_random_order(100, 42);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(order, (0..100).collect::<Vec<_>>());
        // Seeded: same seed, same order; different seed, different order.
        assert_eq!(order, pseudo_random_order(100, 42));
        assert_ne!(order, pseudo_random_order(100, 43));
    }

    #[test]
    fn finished_run_is_bit_identical_to_stamp() {
        let series = test_series(180);
        let m = 9;
        let exc = m / 2;
        let reference = stamp_with_exclusion(&series, m, exc);
        for seed in [0u64, 1, 0xDEADBEEF] {
            let mut driver = AnytimeStamp::with_seed(&series, m, exc, seed);
            let finished = driver.finish();
            assert_eq!(finished.profile, reference.profile, "seed {seed}");
            assert_eq!(finished.index, reference.index, "seed {seed}");
        }
    }

    #[test]
    fn interleaved_stepping_reaches_the_same_profile() {
        let series = test_series(150);
        let m = 8;
        let exc = m / 2;
        let reference = stamp_with_exclusion(&series, m, exc);
        let mut driver = AnytimeStamp::with_seed(&series, m, exc, 7);
        assert!(driver.step());
        assert_eq!(driver.processed(), 1);
        driver.run_for(10);
        assert_eq!(driver.processed(), 11);
        let finished = driver.finish_parallel();
        assert!(driver.is_done());
        assert!(!driver.step());
        assert_eq!(finished.profile, reference.profile);
        assert_eq!(finished.index, reference.index);
    }

    #[test]
    fn parallel_finish_deterministic_across_thread_counts() {
        let series = test_series(220);
        let m = 10;
        let exc = m / 2;
        let reference = stamp_with_exclusion(&series, m, exc);
        for threads in [1usize, 2, 3, 8] {
            let run = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| AnytimeStamp::with_exclusion(&series, m, exc).finish_parallel());
            assert_eq!(run.profile, reference.profile, "{threads} threads");
            assert_eq!(run.index, reference.index, "{threads} threads");
        }
    }

    /// The acceptance contract against STOMP: on deterministic
    /// fixtures the finished anytime profile agrees with STOMP to 1e-6
    /// (the permutation proptest uses 1e-5 because adversarial random
    /// series amplify FFT-vs-incremental error through the sqrt near
    /// zero distances).
    #[test]
    fn finished_profile_matches_stomp_to_1e6() {
        let series = test_series(250);
        for &m in &[6usize, 12] {
            let anytime = AnytimeStamp::with_exclusion(&series, m, m / 2).finish_parallel();
            let stomp = crate::stomp::stomp_with_exclusion(&series, m, m / 2);
            for i in 0..anytime.len() {
                assert!(
                    (anytime.profile[i] - stomp.profile[i]).abs() < 1e-6,
                    "m={m} i={i}: {} vs {}",
                    anytime.profile[i],
                    stomp.profile[i]
                );
            }
        }
    }

    #[test]
    fn snapshots_converge_monotonically() {
        let series = test_series(160);
        let mut driver = AnytimeStamp::new(&series, 8);
        let mut previous = driver.snapshot();
        while driver.run_for(17) > 0 {
            let current = driver.snapshot();
            for i in 0..current.len() {
                assert!(
                    current.profile[i] <= previous.profile[i],
                    "entry {i} rose: {} -> {}",
                    previous.profile[i],
                    current.profile[i]
                );
            }
            previous = current;
        }
        assert!(driver.is_done());
    }

    #[test]
    fn partial_profile_is_upper_bound_on_final() {
        let series = test_series(140);
        let m = 7;
        let exc = m / 2;
        let reference = stamp_with_exclusion(&series, m, exc);
        let mut driver = AnytimeStamp::with_seed(&series, m, exc, 3);
        driver.run_for(driver.window_count() / 4);
        let partial = driver.snapshot();
        for i in 0..partial.len() {
            assert!(
                partial.profile[i] >= reference.profile[i] - 1e-12,
                "entry {i}"
            );
        }
    }

    #[test]
    fn exact_ties_are_seed_independent() {
        // Flat plateaus tie at exactly 0.0; the index vector must not
        // depend on which query reached them first.
        let mut series = Vec::new();
        series.extend(std::iter::repeat_n(1.0, 8));
        series.extend((0..8).map(|i| (i as f64 * 0.9).sin()));
        series.extend(std::iter::repeat_n(5.0, 8));
        series.extend((0..8).map(|i| (i as f64 * 1.3).cos()));
        series.extend(std::iter::repeat_n(2.0, 8));
        let m = 4;
        let exc = m / 2;
        let reference = stamp_with_exclusion(&series, m, exc);
        for seed in 0..6u64 {
            let finished = AnytimeStamp::with_seed(&series, m, exc, seed).finish();
            assert_eq!(finished.index, reference.index, "seed {seed}");
            assert_eq!(finished.profile, reference.profile, "seed {seed}");
        }
    }

    #[test]
    fn from_mass_reuses_the_spectrum() {
        let series = test_series(100);
        let m = 6;
        let mass = MassPrecomputed::new(&series, m);
        let reference = stamp_with_exclusion(&series, m, 3);
        let finished = AnytimeStamp::from_mass(mass, 3, 99).finish();
        assert_eq!(finished.profile, reference.profile);
    }

    #[test]
    fn single_window_series_is_immediately_done_after_one_step() {
        let series = vec![1.0, 2.0, 3.0];
        let mut driver = AnytimeStamp::with_exclusion(&series, 3, 1);
        assert_eq!(driver.window_count(), 1);
        let mp = driver.finish_parallel();
        assert!(mp.profile[0].is_infinite());
        assert_eq!(mp.index[0], usize::MAX);
    }

    /// `run_until` checks the clock *before* each query, so an
    /// already-expired deadline runs zero queries — the structural half
    /// of the "never overshoots by more than one query's work"
    /// guarantee.
    #[test]
    fn expired_deadline_runs_nothing() {
        let series = test_series(150);
        let mut driver = AnytimeStamp::new(&series, 8);
        assert_eq!(driver.run_until(Deadline::at(Instant::now())), 0);
        assert_eq!(driver.processed(), 0);
        let past = Instant::now() - Duration::from_secs(1);
        assert_eq!(driver.run_until(Deadline::at(past)), 0);
        assert_eq!(driver.run_for_duration(Duration::ZERO), 0);
    }

    /// The wall-clock half: overshoot beyond the deadline is bounded by
    /// one query's work. The load-bearing asserts are structural (some
    /// progress was made; the run stopped on the clock, far short of
    /// completion — thousands of queries short, so no scheduler stall
    /// can fake it). The elapsed-time bound uses a very generous
    /// absolute slack: it exists to catch "run_until ignores the clock
    /// entirely" regressions (which would run ~seconds), not to measure
    /// scheduling jitter, so CI noise cannot flake it.
    #[test]
    fn run_until_overshoot_is_bounded_by_one_query() {
        let series: Vec<f64> = (0..6000)
            .map(|i| (i as f64 * 0.11).sin() + 0.3 * (i as f64 * 0.013).cos())
            .collect();
        let mut driver = AnytimeStamp::new(&series, 64);
        // Warm up caches/allocations so the timed region is steady-state.
        assert_eq!(driver.run_for(32), 32);
        let budget = Duration::from_millis(10);
        let start = Instant::now();
        let ran = driver.run_until(Deadline::after(budget));
        let elapsed = start.elapsed();
        assert!(ran > 0, "a 10ms budget must admit at least one query");
        assert!(
            !driver.is_done(),
            "the run must have been stopped by the clock, not completion \
             ({} of {} queries processed)",
            driver.processed(),
            driver.window_count()
        );
        let slack = Duration::from_millis(250);
        assert!(
            elapsed <= budget + slack,
            "overshoot: ran {ran} queries in {elapsed:?} against a {budget:?} budget"
        );
    }

    #[test]
    fn deadline_query_budget_matches_run_for() {
        let series = test_series(160);
        let mut a = AnytimeStamp::with_seed(&series, 8, 4, 5);
        let mut b = AnytimeStamp::with_seed(&series, 8, 4, 5);
        a.run_for(23);
        b.run_until(Deadline::queries(23));
        assert_eq!(a.processed(), b.processed());
        assert_eq!(a.snapshot().profile, b.snapshot().profile);
        // Unbounded deadline = run to completion.
        b.run_until(Deadline::unbounded());
        assert!(b.is_done());
        // Query cap composes with (not yet expired) wall-clock bounds.
        let far = Deadline::at(Instant::now() + Duration::from_secs(3600)).with_query_cap(7);
        let ran = a.run_until(far);
        assert_eq!(ran, 7);
    }

    #[test]
    fn segmented_backend_finishes_within_tolerance_of_exact() {
        let series = test_series(260);
        let m = 10;
        let exc = m / 2;
        let reference = stamp_with_exclusion(&series, m, exc);
        let mut driver = AnytimeStamp::with_backend(&series, m, exc, 0, MassBackend::Segmented);
        assert_eq!(driver.backend(), MassBackend::Segmented);
        // Interleave stepping modes; finish_parallel must fall back to
        // the sequential rolled path and still complete.
        driver.run_for(40);
        let partial = driver.snapshot();
        let finished = driver.finish_parallel();
        assert!(driver.is_done());
        for i in 0..finished.len() {
            assert!(
                (finished.profile[i] - reference.profile[i]).abs() <= 1e-9,
                "i={i}: {} vs {}",
                finished.profile[i],
                reference.profile[i]
            );
            // Anytime property holds on the segmented backend too.
            assert!(
                partial.profile[i] >= finished.profile[i] - 1e-12,
                "entry {i}"
            );
        }
    }

    #[test]
    fn stamp_parallel_wrappers() {
        let series = test_series(120);
        let a = stamp_parallel(&series, 8);
        let b = stamp_with_exclusion(&series, 8, 4);
        assert_eq!(a.profile, b.profile);
        assert_eq!(a.index, b.index);
        assert_eq!(a.exclusion, 4);
    }
}
