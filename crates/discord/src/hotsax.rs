//! HOTSAX — heuristic discord discovery (Keogh et al. 2005, the paper's
//! reference \[9\]).
//!
//! Finds the top-1 discord without computing the full matrix profile:
//! candidate windows are visited in ascending SAX-bucket frequency (rare
//! words first — likely discords), and each candidate's nearest-neighbor
//! search visits same-bucket windows first (likely close — early abandon
//! fast). The search is exact: pruning only skips pairs that provably
//! cannot change the result.

use egi_sax::{BreakpointTable, SaxConfig};

use crate::anytime::pseudo_random_order;
use crate::dist::WindowStats;
use crate::profile::Discord;

/// Early-abandoning z-normalized distance between windows `i` and `j`.
/// Returns `None` as soon as the distance provably reaches `best` —
/// uniformly across all three branches: a flat-flat pair (exact 0.0), a
/// flat/non-flat pair (exact `√(2m)`), and the general accumulation
/// loop all honor the same `d < best ⇔ Some` contract.
fn znorm_dist_early_abandon(
    series: &[f64],
    ws: &WindowStats,
    i: usize,
    j: usize,
    best: f64,
) -> Option<f64> {
    let m = ws.m;
    let (mi, si) = (ws.mu[i], ws.sigma[i]);
    let (mj, sj) = (ws.mu[j], ws.sigma[j]);
    if si == 0.0 && sj == 0.0 {
        return if 0.0 < best { Some(0.0) } else { None };
    }
    if si == 0.0 || sj == 0.0 {
        let d = (2.0 * m as f64).sqrt();
        return if d < best { Some(d) } else { None };
    }
    let limit = best * best;
    let mut acc = 0.0;
    for k in 0..m {
        let x = (series[i + k] - mi) / si;
        let y = (series[j + k] - mj) / sj;
        let d = x - y;
        acc += d * d;
        if acc >= limit {
            return None;
        }
    }
    Some(acc.sqrt())
}

/// Finds the top-1 discord of `series` for window length `m` using the
/// HOTSAX heuristic. `sax` controls the bucketing resolution (the classic
/// choice is `w = 3, a = 3`). Returns `None` when fewer than two
/// non-overlapping windows exist.
///
/// The non-self-match convention follows the discord definition:
/// neighbors must satisfy `|i − j| ≥ m`.
pub fn hotsax_discord(series: &[f64], m: usize, sax: SaxConfig) -> Option<Discord> {
    hotsax_discord_masked(series, m, sax, &[])
}

/// Finds the top-`k` non-overlapping discords by repeated masked search.
///
/// After each discovery the found interval is masked (its windows can no
/// longer be *candidates*, though they remain valid as neighbors), and the
/// search reruns. `O(k)` HOTSAX passes — still far below the quadratic
/// matrix profile when `k` is small and the data is well-bucketed.
pub fn hotsax_discords(series: &[f64], m: usize, sax: SaxConfig, k: usize) -> Vec<Discord> {
    let mut found: Vec<Discord> = Vec::with_capacity(k);
    for _ in 0..k {
        let best = hotsax_discord_masked(series, m, sax, &found);
        match best {
            Some(d) => found.push(d),
            None => break,
        }
    }
    found
}

/// One HOTSAX pass skipping candidates that overlap `masked` intervals
/// (the shared search body; [`hotsax_discord`] is the empty-mask case).
fn hotsax_discord_masked(
    series: &[f64],
    m: usize,
    sax: SaxConfig,
    masked: &[Discord],
) -> Option<Discord> {
    let n = series.len();
    if m == 0 || n < 2 * m {
        return None;
    }
    let ws = WindowStats::new(series, m);
    let count = ws.count();
    let is_masked = |i: usize| {
        masked
            .iter()
            .any(|d| egi_tskit::window::intervals_overlap(d.start, d.len, i, m))
    };

    // SAX-bucket every window (direct PAA per window is fine here: this
    // runs once, and HOTSAX's value is the search-order heuristic).
    let table = BreakpointTable::new(sax.a);
    let mut words: Vec<u64> = Vec::with_capacity(count);
    for i in 0..count {
        let word = egi_sax::sax_word(&series[i..i + m], sax, &table);
        // Pack symbols into a u64 key (w ≤ 21 for a ≤ 8; our w is tiny).
        let mut key: u64 = 0;
        for &s in word.symbols() {
            key = key * sax.a as u64 + s as u64;
        }
        words.push(key);
    }
    let mut freq: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    for &w in &words {
        *freq.entry(w).or_insert(0) += 1;
    }
    let mut buckets: std::collections::HashMap<u64, Vec<usize>> = std::collections::HashMap::new();
    for (i, &w) in words.iter().enumerate() {
        buckets.entry(w).or_default().push(i);
    }

    // Outer order: ascending bucket frequency, then position.
    let mut outer: Vec<usize> = (0..count).filter(|&i| !is_masked(i)).collect();
    outer.sort_by_key(|&i| (freq[&words[i]], i));
    let random_order = pseudo_random_order(count, 0xD15C0BD);

    let mut best = Discord {
        start: 0,
        len: m,
        distance: -1.0,
    };
    let mut any = false;
    for &i in &outer {
        let mut nn = f64::INFINITY;
        let mut abandoned = false;
        // Same-bucket neighbors first (likely close — early abandon
        // fast), then everything else in pseudo-random order. The
        // second pass must *skip* same-bucket windows: they were
        // already visited, and re-measuring every one of them doubled
        // the inner-loop work on series dominated by one bucket.
        let same = buckets[&words[i]].iter().copied();
        let rest = random_order
            .iter()
            .copied()
            .filter(|&j| words[j] != words[i]);
        for j in same.chain(rest) {
            if i.abs_diff(j) < m {
                continue;
            }
            if let Some(d) = znorm_dist_early_abandon(series, &ws, i, j, nn) {
                if d < nn {
                    nn = d;
                }
            }
            // If the nearest neighbor is already closer than the best
            // discord distance, i cannot be the discord.
            if nn <= best.distance {
                abandoned = true;
                break;
            }
        }
        if !abandoned && nn.is_finite() && nn > best.distance {
            best = Discord {
                start: i,
                len: m,
                distance: nn,
            };
            any = true;
        }
    }
    if any {
        Some(best)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stomp::stomp_with_exclusion;

    fn periodic_with_outlier(n: usize, period: usize) -> Vec<f64> {
        let mut s: Vec<f64> = (0..n)
            .map(|i| (i as f64 * std::f64::consts::TAU / period as f64).sin())
            .collect();
        let at = n / 2;
        for v in s[at..at + period].iter_mut() {
            *v = v.abs() * 0.3 + 0.4;
        }
        s
    }

    #[test]
    fn finds_planted_discord() {
        let period = 25;
        let series = periodic_with_outlier(500, period);
        let d = hotsax_discord(&series, period, SaxConfig::new(3, 3)).expect("discord");
        assert!(
            (250 - period..=250 + period).contains(&d.start),
            "discord at {}",
            d.start
        );
    }

    #[test]
    fn agrees_with_matrix_profile_discord() {
        let series = periodic_with_outlier(400, 20);
        let m = 20;
        let hs = hotsax_discord(&series, m, SaxConfig::new(3, 3)).unwrap();
        let mp = stomp_with_exclusion(&series, m, m - 1);
        let top = mp.discords(1)[0];
        assert!(
            (hs.distance - top.distance).abs() < 1e-6,
            "HOTSAX {} vs STOMP {}",
            hs.distance,
            top.distance
        );
        // Positions may differ among ties; distances must match.
    }

    #[test]
    fn too_short_series_returns_none() {
        assert!(hotsax_discord(&[1.0; 30], 20, SaxConfig::new(3, 3)).is_none());
        assert!(hotsax_discord(&[], 4, SaxConfig::new(3, 3)).is_none());
    }

    #[test]
    fn top_k_discords_are_non_overlapping_and_descending() {
        let mut series = periodic_with_outlier(600, 30);
        // Add a second, milder outlier in the first half.
        for (off, v) in series[120..150].iter_mut().enumerate() {
            *v += 0.3 * ((off as f64) / 30.0);
        }
        let ds = crate::hotsax::hotsax_discords(&series, 30, SaxConfig::new(3, 3), 3);
        assert!(ds.len() >= 2, "found {}", ds.len());
        for pair in ds.windows(2) {
            assert!(pair[0].distance >= pair[1].distance - 1e-9);
        }
        for i in 0..ds.len() {
            for j in i + 1..ds.len() {
                assert!(
                    !egi_tskit::window::intervals_overlap(
                        ds[i].start,
                        ds[i].len,
                        ds[j].start,
                        ds[j].len
                    ),
                    "{:?} overlaps {:?}",
                    ds[i],
                    ds[j]
                );
            }
        }
        // Top discord matches the single-discord search.
        let top = hotsax_discord(&series, 30, SaxConfig::new(3, 3)).unwrap();
        assert!((ds[0].distance - top.distance).abs() < 1e-9);
    }

    #[test]
    fn top_k_with_k_zero_is_empty() {
        let series = periodic_with_outlier(300, 20);
        assert!(crate::hotsax::hotsax_discords(&series, 20, SaxConfig::new(3, 3), 0).is_empty());
    }

    /// The second (random-order) pass must skip same-bucket windows —
    /// already visited in the first pass — without changing the result.
    #[test]
    fn masked_delegate_and_skip_preserve_results() {
        let series = periodic_with_outlier(400, 20);
        let hs = hotsax_discord(&series, 20, SaxConfig::new(3, 3)).unwrap();
        let masked_empty = super::hotsax_discord_masked(&series, 20, SaxConfig::new(3, 3), &[]);
        assert_eq!(Some(hs), masked_empty);
    }

    /// All three early-abandon branches honor the `d < best ⇔ Some`
    /// contract, including the flat-flat branch that used to return
    /// `Some(0.0)` even when `best` was already 0.
    #[test]
    fn early_abandon_honors_threshold_in_flat_branches() {
        let mut series = vec![2.0; 10];
        series.extend((0..10).map(|i| (i as f64 * 0.8).sin()));
        series.extend(vec![5.0; 10]);
        let ws = WindowStats::new(&series, 10);
        // Windows 0 and 20 are both flat: distance exactly 0.0.
        assert_eq!(
            znorm_dist_early_abandon(&series, &ws, 0, 20, 1.0),
            Some(0.0)
        );
        assert_eq!(znorm_dist_early_abandon(&series, &ws, 0, 20, 0.0), None);
        // Flat vs wavy: exactly √(2m).
        let d = (2.0f64 * 10.0).sqrt();
        assert_eq!(
            znorm_dist_early_abandon(&series, &ws, 0, 10, d + 1e-9),
            Some(d)
        );
        assert_eq!(znorm_dist_early_abandon(&series, &ws, 0, 10, d), None);
        // General branch (windows 10 and 11 are both non-flat):
        // abandons once the accumulated sum reaches best².
        let full = znorm_dist_early_abandon(&series, &ws, 10, 11, f64::INFINITY).unwrap();
        assert!(full > 0.0);
        assert_eq!(
            znorm_dist_early_abandon(&series, &ws, 10, 11, full * 0.5),
            None
        );
        assert_eq!(
            znorm_dist_early_abandon(&series, &ws, 10, 11, full + 1e-9),
            Some(full)
        );
    }
}
